package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// fourSpecs is a body pool whose size is a multiple of two replicas — the
// exact shape that hid the rotation-correlation bug.
func fourSpecs() []workload.Spec {
	return []workload.Spec{
		{Family: "uniform", M: 3, N: 8, Seed: 1},
		{Family: "uniform", M: 3, N: 8, Seed: 2},
		{Family: "uniform", M: 3, N: 8, Seed: 3},
		{Family: "uniform", M: 3, N: 8, Seed: 4},
	}
}

// bodySink is a fake replica that records which distinct request bodies it
// served, so a test can see exactly how specs mapped onto replicas.
type bodySink struct {
	mu     sync.Mutex
	bodies map[string]int
	total  int
	ts     *httptest.Server
}

func newBodySink(t *testing.T, handler func(w http.ResponseWriter, body []byte)) *bodySink {
	t.Helper()
	s := &bodySink{bodies: make(map[string]int)}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.Method == http.MethodPost {
			// The report's end-of-run /metrics and /version GETs are not
			// load; only ledger the issued requests.
			s.mu.Lock()
			s.bodies[string(body)]++
			s.total++
			s.mu.Unlock()
		}
		if handler != nil {
			handler(w, body)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{}`)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *bodySink) distinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bodies)
}

func (s *bodySink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// TestFleetRotationCoversAllPairs is the regression for the rotation-
// correlation bug: the preferred replica used to be derived from the body
// index, so with round-robin popularity and a spec count divisible by the
// replica count, every spec was pinned to one replica — replica 0 only
// ever saw even specs. Every (spec, preferred-replica) pair must occur,
// and the spread must stay even.
func TestFleetRotationCoversAllPairs(t *testing.T) {
	a := newBodySink(t, nil)
	b := newBodySink(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURLs:    []string{a.ts.URL, b.ts.URL},
		Mode:        "open",
		Arrival:     "fixed",
		Rate:        500,
		Duration:    500 * time.Millisecond,
		Concurrency: 64,
		Op:          "plan",
		Specs:       fourSpecs(),
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("fleet run: %+v", rep)
	}
	// No failures, so every request was served by its preferred replica:
	// the sinks record the preference assignment itself.
	for name, sink := range map[string]*bodySink{"a": a, "b": b} {
		if got := sink.distinct(); got != len(fourSpecs()) {
			t.Fatalf("replica %s saw %d distinct specs, want %d — rotation correlated with body index",
				name, got, len(fourSpecs()))
		}
	}
	// Block-even spread: every block of 2 arrivals covers both replicas,
	// so the split cannot be skewed by more than in-flight jitter.
	ca, cb := a.count(), b.count()
	if diff := ca - cb; diff < -2 || diff > 2 {
		t.Fatalf("uneven replica spread: %d vs %d", ca, cb)
	}
}

// TestThroughputExcludesDrain is the regression for the elapsed-time bug:
// throughput used to divide by (issuing window + drain), so a run whose
// requests complete after the window reported deflated rates. A handler
// that sleeps past the window must yield DurationS ≈ the window, a
// visible DrainS, and Throughput = Done / DurationS.
func TestThroughputExcludesDrain(t *testing.T) {
	slow := newBodySink(t, func(w http.ResponseWriter, _ []byte) {
		time.Sleep(250 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{}`)
	})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     slow.ts.URL,
		Mode:        "open",
		Arrival:     "fixed",
		Rate:        40,
		Duration:    400 * time.Millisecond,
		Concurrency: 64,
		Op:          "plan",
		Specs:       fourSpecs()[:1],
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("slow run: %+v", rep)
	}
	if rep.DurationS < 0.3 || rep.DurationS > 0.8 {
		t.Fatalf("issuing window %.3fs, configured 0.4s", rep.DurationS)
	}
	if rep.DrainS < 0.1 {
		t.Fatalf("drain %.3fs invisible behind a 250ms handler", rep.DrainS)
	}
	want := float64(rep.Done) / rep.DurationS
	if diff := rep.Throughput - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("throughput %.3f, want done/issuing-window = %.3f", rep.Throughput, want)
	}
	deflated := float64(rep.Done) / (rep.DurationS + rep.DrainS)
	if rep.Throughput <= deflated {
		t.Fatalf("throughput %.3f not above drain-deflated %.3f", rep.Throughput, deflated)
	}
}

// TestOrganicInjectedBodyCountsOrganic is the regression for the
// classification bug: an organic 500 whose error message happens to
// contain the word "injected" used to be misfiled as an injected fault.
// Only the X-Suu-Injected header marks injection.
func TestOrganicInjectedBodyCountsOrganic(t *testing.T) {
	organic := newBodySink(t, func(w http.ResponseWriter, _ []byte) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error": "config key sql_injected_guard missing"}`)
	})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     organic.ts.URL,
		Mode:        "open",
		Arrival:     "fixed",
		Rate:        200,
		Duration:    200 * time.Millisecond,
		Concurrency: 16,
		Op:          "plan",
		Specs:       fourSpecs()[:1],
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("no errors from an all-500 server")
	}
	if rep.InjectedErrors != 0 {
		t.Fatalf("%d organic 500s misfiled as injected (body text matched)", rep.InjectedErrors)
	}
	if rep.OrganicServerErrors != rep.Errors {
		t.Fatalf("organic_5xx = %d, errors = %d", rep.OrganicServerErrors, rep.Errors)
	}
}

// TestInjectedComputeFaultMarked drives a real planner whose compute hook
// fails with the typed injected error and pins the whole chain: the typed
// error survives the planner's error path, the HTTP layer mirrors the
// X-Suu-Injected header onto the 500, and the harness ledgers it as
// injected with zero organic 5xx.
func TestInjectedComputeFaultMarked(t *testing.T) {
	ts, _ := newTestServer(t, func(c *Config) {
		c.ComputeHook = func() error { return &faults.InjectedError{Cause: "compute error"} }
	})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "closed",
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Op:          "plan",
		Specs:       fourSpecs(),
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("no errors with an always-failing compute hook")
	}
	if rep.OrganicServerErrors != 0 {
		t.Fatalf("%d injected compute faults ledgered organic — header not mirrored", rep.OrganicServerErrors)
	}
	if rep.InjectedErrors != rep.Errors {
		t.Fatalf("injected = %d, errors = %d", rep.InjectedErrors, rep.Errors)
	}
}

// TestRunLoadShapedZipf drives a real server under a switching curve and
// zipfian popularity: the run completes cleanly, the report carries the
// shape labels, and the offered rate is the curve's mean, not the -rate
// flag.
func TestRunLoadShapedZipf(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "open",
		Arrival:     "poisson",
		Curve:       "switching:300:100:200ms",
		Popularity:  "zipf:1.1",
		Duration:    600 * time.Millisecond,
		Concurrency: 64,
		Op:          "plan",
		Specs:       fourSpecs(),
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("shaped run: %+v", rep)
	}
	if rep.Curve != "switching:300:100:200ms" || rep.Popularity != "zipf:1.1" {
		t.Fatalf("shape labels: curve=%q popularity=%q", rep.Curve, rep.Popularity)
	}
	// 600ms = 3 half-up/half-down periods: the mean of the square wave.
	if rep.OfferedRate != 200 {
		t.Fatalf("offered rate %g, want the curve mean 200", rep.OfferedRate)
	}
	if rep.Issued != rep.Done+rep.Errors {
		t.Fatalf("ledger does not reconcile: %+v", rep)
	}
}

// TestRecordReplay is the end-to-end pipeline: a recorded run's trace
// re-issues the identical op/spec sequence at 2× speed, both ledgers
// reconcile, and the recording of the replay matches the original
// sequence record for record.
func TestRecordReplay(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	dir := t.TempDir()
	orig, again := dir+"/orig.trace", dir+"/again.trace"

	rep1, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "open",
		Arrival:     "fixed",
		Curve:       "switching:400:100:200ms",
		Popularity:  "zipf:0.9",
		Duration:    600 * time.Millisecond,
		Concurrency: 64,
		Op:          "plan",
		Specs:       fourSpecs(),
		Seed:        21,
		RecordPath:  orig,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Errors != 0 || rep1.Done == 0 || rep1.RecordErrors != 0 {
		t.Fatalf("recorded run: %+v", rep1)
	}
	if rep1.Recorded != rep1.Issued {
		t.Fatalf("recorded %d of %d issued", rep1.Recorded, rep1.Issued)
	}
	tr1, err := traffic.OpenTrace(orig)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tr1.Requests)) != rep1.Issued || tr1.Skipped != 0 {
		t.Fatalf("trace holds %d requests (skipped %d), issued %d",
			len(tr1.Requests), tr1.Skipped, rep1.Issued)
	}
	if tr1.Header.Op != "plan" || len(tr1.Header.Specs) != len(fourSpecs()) ||
		tr1.Header.Curve != "switching:400:100:200ms" || tr1.Header.Popularity != "zipf:0.9" {
		t.Fatalf("trace header: %+v", tr1.Header)
	}

	rep2, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		ReplayPath:  orig,
		ReplaySpeed: 2,
		Concurrency: 64,
		RecordPath:  again,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Errors != 0 || rep2.Dropped != 0 {
		t.Fatalf("replay run: %+v", rep2)
	}
	if rep2.Issued != rep1.Issued || rep2.Issued != rep2.Done+rep2.Errors {
		t.Fatalf("replay issued %d (done %d), recording issued %d",
			rep2.Issued, rep2.Done, rep1.Issued)
	}
	if rep2.ReplaySpeed != 2 || rep2.Arrival != "replay" {
		t.Fatalf("replay labels: %+v", rep2)
	}
	// 2× speed: the replay's issuing window is half the original's, give
	// or take scheduling slack on the final arrival.
	if rep2.DurationS > 0.8*rep1.DurationS {
		t.Fatalf("replay window %.3fs not compressed vs original %.3fs",
			rep2.DurationS, rep1.DurationS)
	}
	tr2, err := traffic.OpenTrace(again)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Requests) != len(tr1.Requests) {
		t.Fatalf("replay recorded %d requests, original %d", len(tr2.Requests), len(tr1.Requests))
	}
	for i := range tr1.Requests {
		if tr1.Requests[i].Spec != tr2.Requests[i].Spec || tr1.Requests[i].Op != tr2.Requests[i].Op {
			t.Fatalf("sequence diverged at %d: recorded spec %d, replayed spec %d",
				i, tr1.Requests[i].Spec, tr2.Requests[i].Spec)
		}
		// The replayed schedule is the original compressed 2×.
		want := tr1.Requests[i].Rel / 2
		if got := tr2.Requests[i].Rel; got != want {
			t.Fatalf("schedule at %d: replayed rel %s, want %s", i, got, want)
		}
	}
}

// TestReplayBatchRebuildsBodies replays a plan-batch recording and pins
// that the header alone rebuilds the identical body pool: the item ledger
// of the replay matches the original's per-request item counts.
func TestReplayBatchRebuildsBodies(t *testing.T) {
	ts, _ := newTestServer(t, func(c *Config) { c.QueueDepth = 256 })
	dir := t.TempDir()
	path := dir + "/batch.trace"
	cfg := LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "open",
		Arrival:     "fixed",
		Rate:        100,
		BatchSize:   3,
		BatchDist:   "uniform",
		Duration:    400 * time.Millisecond,
		Concurrency: 32,
		Op:          "plan-batch",
		Specs:       fourSpecs(),
		Seed:        5,
		RecordPath:  path,
	}
	rep1, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Errors != 0 || rep1.Done == 0 {
		t.Fatalf("batch recording: %+v", rep1)
	}
	rep2, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		ReplayPath:  path,
		ReplaySpeed: 2,
		Concurrency: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Errors != 0 || rep2.Dropped != 0 {
		t.Fatalf("batch replay: %+v", rep2)
	}
	if rep2.ItemsIssued != rep1.ItemsIssued {
		t.Fatalf("replay issued %d items, recording issued %d — bodies not rebuilt identically",
			rep2.ItemsIssued, rep1.ItemsIssued)
	}
	if rep2.BatchSize != 3 || rep2.BatchDist != "uniform" || rep2.Op != "plan-batch" {
		t.Fatalf("replay did not inherit the recorded shape: %+v", rep2)
	}
}

// TestRecordedOutcomesAndSources checks the per-request metadata a
// summarizer consumes: a traced server yields records whose sources name
// cached/computed, and outcomes are all ok on a clean run.
func TestRecordedOutcomesAndSources(t *testing.T) {
	ts, _ := tracedServer(t, nil)
	path := t.TempDir() + "/traced.trace"
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Mode:        "closed",
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Op:          "plan",
		Specs:       fourSpecs()[:2],
		Seed:        8,
		RecordPath:  path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Done == 0 {
		t.Fatalf("traced run: %+v", rep)
	}
	tr, err := traffic.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	sources := make(map[string]int)
	for _, r := range tr.Requests {
		if r.Outcome != "ok" {
			t.Fatalf("outcome %q on a clean run: %+v", r.Outcome, r)
		}
		sources[r.Source]++
	}
	if sources["computed"] == 0 || sources["cached"] == 0 {
		t.Fatalf("recorded sources missing cached/computed split: %v", sources)
	}
}

// TestWriteErrorInjectedHeader pins the unit seam: a typed injected error
// gets the header, an organic error whose text merely says "injected"
// does not.
func TestWriteErrorInjectedHeader(t *testing.T) {
	rr := httptest.NewRecorder()
	writeError(rr, fmt.Errorf("wrapping: %w", &faults.InjectedError{Cause: "compute error"}))
	if rr.Code != http.StatusInternalServerError || rr.Header().Get("X-Suu-Injected") == "" {
		t.Fatalf("typed injected error: status %d, header %q", rr.Code, rr.Header().Get("X-Suu-Injected"))
	}
	rr = httptest.NewRecorder()
	writeError(rr, fmt.Errorf("organic failure mentioning injected"))
	if rr.Header().Get("X-Suu-Injected") != "" {
		t.Fatal("organic error marked injected on body text")
	}
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("error body: %s", rr.Body.String())
	}
}
