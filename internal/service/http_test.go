package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func newTestServer(t *testing.T, extra func(*Config)) (*httptest.Server, *Planner) {
	t.Helper()
	p := smallPlanner(extra)
	ts := httptest.NewServer(NewServer(p))
	t.Cleanup(ts.Close)
	return ts, p
}

// TestHTTPPlanGolden round-trips a fixed request and pins the response
// shape: every field the API contract names, with values cross-checked
// against the library computed directly (the response is "golden" against
// the library, not against a brittle committed byte string).
func TestHTTPPlanGolden(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	req := testInstance(t, "uniform", 4, 8, 42)
	resp, body := postJSON(t, ts, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	for _, field := range []string{"fingerprint", "class", "m", "n", "target", "tstar", "lower_bound", "length", "machines", "cached"} {
		if _, ok := got[field]; !ok {
			t.Errorf("response missing field %q in %s", field, body)
		}
	}
	// Direct library call agrees field by field.
	direct, err := smallPlanner(nil).Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got["fingerprint"] != direct.Fingerprint {
		t.Errorf("fingerprint %v vs %v", got["fingerprint"], direct.Fingerprint)
	}
	if got["tstar"].(float64) != direct.TStar {
		t.Errorf("tstar %v vs %v", got["tstar"], direct.TStar)
	}
	if int64(got["length"].(float64)) != direct.Length {
		t.Errorf("length %v vs %v", got["length"], direct.Length)
	}
	if got["class"] != "independent" || got["cached"] != false {
		t.Errorf("class/cached: %v/%v", got["class"], got["cached"])
	}
	// Second POST of the same content: served from cache.
	resp2, body2 := postJSON(t, ts, "/v1/plan", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status %d", resp2.StatusCode)
	}
	var got2 struct {
		Cached bool    `json:"cached"`
		TStar  float64 `json:"tstar"`
	}
	if err := json.Unmarshal(body2, &got2); err != nil {
		t.Fatal(err)
	}
	if !got2.Cached || got2.TStar != direct.TStar {
		t.Errorf("second response: %s", body2)
	}
}

func TestHTTPEstimateGolden(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	ins := testInstance(t, "uniform", 4, 8, 17).Instance
	resp, body := postJSON(t, ts, "/v1/estimate", &EstimateRequest{
		Instance: ins, Policy: "sem", Trials: 25, Seed: 6,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got EstimateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	direct, err := smallPlanner(nil).Estimate(context.Background(), &EstimateRequest{
		Instance: ins, Policy: "sem", Trials: 25, Seed: 6,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != direct.Mean || got.Median != direct.Median || got.Policy != "sem" ||
		got.Trials != 25 || got.Seed != 6 || got.Fingerprint != direct.Fingerprint {
		t.Errorf("estimate over HTTP %+v differs from direct %+v", got, direct)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	ts, p := newTestServer(t, nil)
	ins := testInstance(t, "uniform", 3, 6, 1).Instance

	check := func(name string, resp *http.Response, body []byte, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, wantCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %s", name, body)
		}
	}

	// Malformed JSON.
	resp, err := ts.Client().Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	check("malformed", resp, body, http.StatusBadRequest)

	// Malformed instance: q outside [0,1] fails model validation.
	resp, err = ts.Client().Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"instance":{"m":1,"n":1,"q":[[2.5]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	check("invalid q", resp, body, http.StatusBadRequest)

	// Missing instance.
	resp, body = postJSON(t, ts, "/v1/plan", &PlanRequest{})
	check("missing instance", resp, body, http.StatusBadRequest)

	// Over-budget trials (MaxTrials is 500 in smallPlanner).
	resp, body = postJSON(t, ts, "/v1/estimate", &EstimateRequest{Instance: ins, Trials: 501})
	check("over budget", resp, body, http.StatusBadRequest)

	// Unknown policy.
	resp, body = postJSON(t, ts, "/v1/estimate", &EstimateRequest{Instance: ins, Policy: "nope"})
	check("unknown policy", resp, body, http.StatusBadRequest)

	// Stream requests validate BEFORE the 200 status line commits: a bad
	// streamed request must be a real 400, not a 200 with an error line.
	resp, body = postJSON(t, ts, "/v1/estimate", &EstimateRequest{Instance: ins, Trials: 501, Stream: true})
	check("over budget streamed", resp, body, http.StatusBadRequest)

	// Oversized body: a real 413 naming the limit, not a generic decode
	// 400 (the limit is lowered so the test does not ship 64 MB).
	srv := NewServer(p)
	srv.maxBody = 128
	bigTS := httptest.NewServer(srv)
	defer bigTS.Close()
	big := `{"instance":{"m":3,"n":6,"q":[` + strings.Repeat("[0.5,0.5,0.5,0.5,0.5,0.5],", 64) + `]}}`
	resp, err = http.Post(bigTS.URL+"/v1/plan", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	check("oversized body", resp, body, http.StatusRequestEntityTooLarge)

	// Wrong method.
	getResp, err := ts.Client().Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: %d", getResp.StatusCode)
	}

	// Queue-full rejection: occupy the workers and the whole line.
	for i := 0; i < p.cfg.Workers; i++ {
		p.slots <- struct{}{}
	}
	p.queued.Add(int64(p.cfg.QueueDepth))
	resp, body = postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 3, 6, 99))
	check("queue full", resp, body, http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	p.queued.Add(-int64(p.cfg.QueueDepth))
	for i := 0; i < p.cfg.Workers; i++ {
		<-p.slots
	}
}

func TestHTTPEstimateStreaming(t *testing.T) {
	ts, _ := newTestServer(t, func(c *Config) { c.ProgressChunk = 5 })
	ins := testInstance(t, "uniform", 3, 6, 23).Instance
	data, _ := json.Marshal(&EstimateRequest{Instance: ins, Trials: 18, Seed: 2, Stream: true})
	resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var progress []Progress
	var result *EstimateResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev estimateEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case ev.Progress != nil:
			progress = append(progress, *ev.Progress)
		case ev.Result != nil:
			result = ev.Result
		case ev.Error != "":
			t.Fatalf("stream error: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(progress) != 3 { // after 5, 10, 15 of 18
		t.Fatalf("progress lines = %d (%+v)", len(progress), progress)
	}
	if result == nil || result.Trials != 18 {
		t.Fatalf("missing/short final result: %+v", result)
	}
	// A repeat of the same request hits the cache: result only, no
	// progress, same numbers.
	resp2, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var lines []estimateEvent
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var ev estimateEvent
		if err := json.Unmarshal(sc2.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 1 || lines[0].Result == nil || !lines[0].Result.Cached {
		t.Fatalf("cached stream = %+v", lines)
	}
	if lines[0].Result.Mean != result.Mean {
		t.Error("cached stream result differs")
	}
}

// TestHTTPPlanBatchGolden round-trips a mixed batch over HTTP and pins the
// response shape: envelope fields, per-item statuses and sources, and
// payloads cross-checked against the single endpoint.
func TestHTTPPlanBatchGolden(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	fresh := testInstance(t, "uniform", 4, 8, 201)
	chain := testInstance(t, "chains", 4, 12, 202)

	resp, body := postJSON(t, ts, "/v1/plan/batch", &BatchPlanRequest{Items: []PlanRequest{
		*fresh, jsonClone(t, fresh), *chain, {},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	for _, field := range []string{"size", "ok", "errors", "cached", "computed", "coalesced", "cost_units", "items"} {
		if _, present := got[field]; !present {
			t.Errorf("response missing field %q in %s", field, body)
		}
	}
	var batch BatchPlanResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Size != 4 || batch.OK != 3 || batch.Errors != 1 ||
		batch.Computed != 2 || batch.Coalesced != 1 {
		t.Fatalf("summary: %+v", batch)
	}
	direct, err := smallPlanner(nil).Plan(context.Background(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalPlanJSON(t, batch.Items[0].Plan), canonicalPlanJSON(t, direct); got != want {
		t.Errorf("batch payload over HTTP differs from direct library call")
	}
	if batch.Items[3].Status != "error" || batch.Items[3].Error == "" {
		t.Errorf("invalid item: %+v", batch.Items[3])
	}

	// Error paths: malformed JSON and an oversized batch are envelope-level
	// 400s (there are no items to isolate).
	r2, err := ts.Client().Post(ts.URL+"/v1/plan/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: %d", r2.StatusCode)
	}
	resp, body = postJSON(t, ts, "/v1/plan/batch", &BatchPlanRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d (%s)", resp.StatusCode, body)
	}
}

// TestHTTPMetricsBatchCounters pins the /metrics batch accounting
// contract: the documented batch counters exist, are monotone across
// documents, reconcile exactly within one document
// (batch_items = cached + computed + coalesced + errors — they are
// snapshotted under one lock), and per-item batch accounting keeps
// cache_hit_rate ≤ 1.
func TestHTTPMetricsBatchCounters(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	a := testInstance(t, "uniform", 3, 6, 301)
	b := testInstance(t, "uniform", 3, 6, 302)

	fetch := func() MetricsSnapshot {
		t.Helper()
		snap, err := FetchMetrics(context.Background(), ts.Client(), ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		return snap.check(t)
	}

	postJSON(t, ts, "/v1/plan/batch", &BatchPlanRequest{Items: []PlanRequest{*a, jsonClone(t, a), *b}})
	doc1 := fetch()
	if doc1.Batches != 1 || doc1.BatchItems != 3 || doc1.BatchComputed != 2 || doc1.BatchShared != 1 {
		t.Fatalf("doc1: %+v", doc1)
	}
	if doc1.BatchSizes.Count != 1 || doc1.BatchLatency.Count != 1 || doc1.BatchLatency.P99 <= 0 {
		t.Fatalf("doc1 batch histograms: %+v / %+v", doc1.BatchSizes, doc1.BatchLatency)
	}

	// A second batch: all hits plus one per-item error.
	postJSON(t, ts, "/v1/plan/batch", &BatchPlanRequest{Items: []PlanRequest{jsonClone(t, b), {}}})
	doc2 := fetch()
	if doc2.Batches != 2 || doc2.BatchItems != 5 || doc2.BatchCached != doc1.BatchCached+1 || doc2.BatchErrors != doc1.BatchErrors+1 {
		t.Fatalf("doc2: %+v", doc2)
	}
	// Monotonicity, counter by counter.
	type pair struct {
		name string
		a, b uint64
	}
	for _, c := range []pair{
		{"batches", doc1.Batches, doc2.Batches},
		{"batch_items", doc1.BatchItems, doc2.BatchItems},
		{"batch_items_cached", doc1.BatchCached, doc2.BatchCached},
		{"batch_items_computed", doc1.BatchComputed, doc2.BatchComputed},
		{"batch_items_coalesced", doc1.BatchShared, doc2.BatchShared},
		{"batch_item_errors", doc1.BatchErrors, doc2.BatchErrors},
		{"cache_hits", doc1.CacheHits, doc2.CacheHits},
		{"cache_misses", doc1.CacheMisses, doc2.CacheMisses},
		{"coalesced", doc1.Coalesced, doc2.Coalesced},
	} {
		if c.b < c.a {
			t.Errorf("%s went backwards: %d → %d", c.name, c.a, c.b)
		}
	}
}

// check asserts the invariants every /metrics document must satisfy.
func (sn MetricsSnapshot) check(t *testing.T) MetricsSnapshot {
	t.Helper()
	if sn.BatchItems != sn.BatchCached+sn.BatchComputed+sn.BatchShared+sn.BatchErrors {
		t.Fatalf("batch items do not reconcile within one document: %+v", sn)
	}
	if sn.CacheHitRate < 0 || sn.CacheHitRate > 1 {
		t.Fatalf("cache_hit_rate %v outside [0, 1]: %+v", sn.CacheHitRate, sn)
	}
	if sn.Coalesced > sn.CacheMisses {
		t.Fatalf("coalesced %d > misses %d within one document", sn.Coalesced, sn.CacheMisses)
	}
	return sn
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 3, 6, 55))
	postJSON(t, ts, "/v1/plan", testInstance(t, "uniform", 3, 6, 55))

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb healthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hb.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, hb)
	}

	snap, err := FetchMetrics(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Plans != 2 || snap.CacheHits != 1 || snap.CacheMisses == 0 {
		t.Fatalf("metrics: %+v", snap)
	}
	if snap.PlanLatency.Count != 2 || snap.PlanLatency.P99 <= 0 {
		t.Fatalf("plan latency: %+v", snap.PlanLatency)
	}
	if snap.CacheHitRate <= 0 || snap.CacheHitRate >= 1 {
		t.Fatalf("hit rate: %v", snap.CacheHitRate)
	}
}

// TestHTTPGracefulShutdown drives the real http.Server shutdown path: an
// in-flight estimate must complete with a full 200 response while new
// work is turned away.
func TestHTTPGracefulShutdown(t *testing.T) {
	p := smallPlanner(nil)
	gp := &gatePolicy{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	p.policies["gate"] = func() sim.Policy { return gp }
	srv := &http.Server{Handler: NewServer(p)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	ins := testInstance(t, "uniform", 3, 5, 77).Instance
	data, _ := json.Marshal(&EstimateRequest{Instance: ins, Policy: "gate", Trials: 2, Seed: 1})
	type result struct {
		code int
		body EstimateResponse
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/estimate", "application/json", bytes.NewReader(data))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var er EstimateResponse
		decErr := json.NewDecoder(resp.Body).Decode(&er)
		resCh <- result{code: resp.StatusCode, body: er, err: decErr}
	}()
	<-gp.entered // request is mid-computation

	shutdownDone := make(chan error, 1)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(shutCtx) }()

	// The listener closes promptly: new connections are refused while the
	// in-flight request keeps computing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := http.Post(base+"/healthz", "application/json", nil)
		if err != nil {
			break // refused: shutdown has closed the listener
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request in flight", err)
	default:
	}

	close(gp.gate)
	res := <-resCh
	if res.err != nil || res.code != http.StatusOK {
		t.Fatalf("in-flight request: code=%d err=%v", res.code, res.err)
	}
	if res.body.Trials != 2 {
		t.Fatalf("in-flight response truncated: %+v", res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	p.Close() // planner drains too (nothing left in flight)
	if _, err := p.Plan(context.Background(), testInstance(t, "uniform", 3, 5, 78)); err == nil {
		t.Fatal("planner accepted work after Close")
	}
	_ = fmt.Sprintf("%v", p.Metrics()) // String() smoke
}
