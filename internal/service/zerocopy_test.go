package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"repro/internal/scenario"
	"repro/internal/workload"
)

// testFrame builds a cachedFrame the way the planner's cold-encode path
// does: one json.Marshal of the canonical (flags-false) response.
func testFrame(t *testing.T, v any) *cachedFrame {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return newCachedFrame(v, b)
}

// TestFrameRoundTripAcrossShapes is the frame≡struct property: for every
// scenario shape the planner accepts, the stored byte frame decodes back
// to exactly the struct the planner computed, and the frame is
// byte-identical to the canonical encoding of that struct. Shapes the
// planner rejects (forest, layered precedence) must reject identically
// through the serving path.
func TestFrameRoundTripAcrossShapes(t *testing.T) {
	p := propPlanner()
	defer p.Close()
	n := propScenarios(t) / 4
	for si, shape := range scenario.Shapes {
		g := scenario.New(8800 + int64(si))
		for i := 0; i < n; i++ {
			ins, err := g.Instance(shape)
			if err != nil {
				t.Fatal(err)
			}
			req := &PlanRequest{Instance: ins}
			sv, err := p.planServe(context.Background(), req, nil)
			if err != nil {
				// The serving path must reject exactly what the library
				// rejects — nothing shape-specific may leak in.
				if _, lerr := p.Plan(context.Background(), req); lerr == nil || lerr.Error() != err.Error() {
					t.Fatalf("%s/%d: planServe err %q, Plan err %v", shape, i, err, lerr)
				}
				continue
			}
			want := sv.cf.val.(*PlanResponse)
			var got PlanResponse
			if err := json.Unmarshal(sv.cf.frame, &got); err != nil {
				t.Fatalf("%s/%d: frame does not decode: %v", shape, i, err)
			}
			if !reflect.DeepEqual(&got, want) {
				t.Fatalf("%s/%d: decoded frame differs from planner struct", shape, i)
			}
			canon, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, sv.cf.frame) {
				t.Fatalf("%s/%d: frame is not the canonical encoding\nframe: %s\ncanon: %s", shape, i, sv.cf.frame, canon)
			}
			if !want.Degraded && sv.cf.splice < 0 {
				t.Fatalf("%s/%d: canonical frame not spliceable", shape, i)
			}
		}
	}
}

// TestConcurrentHitsShareFrame pins the zero-copy claim under -race:
// every concurrent cache hit serves from the same backing array, splicing
// never mutates it, and the served bytes are exactly prefix+spliced-tail.
func TestConcurrentHitsShareFrame(t *testing.T) {
	p := smallPlanner(nil)
	defer p.Close()
	req := testInstance(t, "uniform", 4, 12, 99)
	if _, err := p.Plan(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	first, err := p.planServe(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !first.cached {
		t.Fatal("second serve of the same request was not a cache hit")
	}
	frame := first.cf.frame
	sum := sha256.Sum256(frame)
	wantTail := append(append([]byte{}, frame[:first.cf.splice]...), `"cached":true}`...)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := new(bytes.Buffer)
			for i := 0; i < 50; i++ {
				sv, err := p.planServe(context.Background(), req, nil)
				if err != nil {
					errs <- err
					return
				}
				if &sv.cf.frame[0] != &frame[0] {
					errs <- fmt.Errorf("hit served from a copied frame")
					return
				}
				buf.Reset()
				appendServed(buf, sv)
				if !bytes.Equal(buf.Bytes(), wantTail) {
					errs <- fmt.Errorf("spliced payload mismatch: %s", buf.Bytes())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sha256.Sum256(frame) != sum {
		t.Fatal("shared frame bytes mutated by concurrent serving")
	}
}

// TestHTTPContentLength pins sized (non-chunked) writes on the single-plan
// endpoint and on error responses: the Content-Length header is present
// and exact, so proxies can cache and clients can preallocate.
func TestHTTPContentLength(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	req := testInstance(t, "uniform", 3, 9, 5)

	for pass, wantCached := range []bool{false, true} {
		resp, body := postJSON(t, ts, "/v1/plan", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", pass, resp.StatusCode, body)
		}
		if len(resp.TransferEncoding) != 0 {
			t.Fatalf("pass %d: chunked response: %v", pass, resp.TransferEncoding)
		}
		if resp.ContentLength != int64(len(body)) {
			t.Fatalf("pass %d: Content-Length %d, body %d bytes", pass, resp.ContentLength, len(body))
		}
		var got PlanResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Cached != wantCached {
			t.Fatalf("pass %d: cached=%v, want %v", pass, got.Cached, wantCached)
		}
	}

	resp, body := postJSON(t, ts, "/v1/plan", &PlanRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request: status %d", resp.StatusCode)
	}
	if len(resp.TransferEncoding) != 0 {
		t.Fatalf("error response chunked: %v", resp.TransferEncoding)
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("error Content-Length %d, body %d bytes", resp.ContentLength, len(body))
	}
}

// TestMetricsZeroCopyLedger drives one cold encode and one spliced hit
// through HTTP and checks the serving ledger reconciles: both payload
// byte buckets filled, the encode histogram populated, and exactly as
// many splices as cache/coalesced serves.
func TestMetricsZeroCopyLedger(t *testing.T) {
	ts, p := newTestServer(t, nil)
	req := testInstance(t, "uniform", 3, 8, 17)
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts, "/v1/plan", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	for _, key := range []string{"payload_bytes_served", "encode_ns", "frames_spliced", "cold_encodes"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("/metrics missing %q", key)
		}
	}

	snap := p.Metrics()
	if snap.ColdEncodes < 1 {
		t.Fatalf("cold_encodes = %d, want >= 1", snap.ColdEncodes)
	}
	if snap.EncodeNS.Count < 1 {
		t.Fatalf("encode_ns count = %d, want >= 1", snap.EncodeNS.Count)
	}
	if snap.PayloadBytes.ColdEncode == 0 || snap.PayloadBytes.EncodedCache == 0 {
		t.Fatalf("payload bytes not split: cold=%d cache=%d",
			snap.PayloadBytes.ColdEncode, snap.PayloadBytes.EncodedCache)
	}
	if snap.FramesSpliced != snap.CacheHits+snap.Coalesced {
		t.Fatalf("frames_spliced=%d does not reconcile with hits=%d + coalesced=%d",
			snap.FramesSpliced, snap.CacheHits, snap.Coalesced)
	}
}

// TestStoredEnvelopeKeepsFrameBytes pins the store tier's half of the
// byte-stability contract: the frame that goes into a stored envelope
// comes back out byte-identical, and the decoded struct matches.
func TestStoredEnvelopeKeepsFrameBytes(t *testing.T) {
	want := &PlanResponse{Fingerprint: "abc", Class: "independent", M: 2, N: 4, Length: 4, TStar: 2.5}
	cf := testFrame(t, want)
	b, err := encodeStored(kindPlan, cf.frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeStored(kindPlan, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.frame, cf.frame) {
		t.Fatalf("store round-trip changed frame bytes\nin:  %s\nout: %s", cf.frame, got.frame)
	}
	if !reflect.DeepEqual(got.val, want) {
		t.Fatalf("store round-trip changed decoded struct: %+v", got.val)
	}
	if got.splice != cf.splice {
		t.Fatalf("store round-trip changed splice: %d vs %d", got.splice, cf.splice)
	}
}

// TestDecodeCacheSharesInstances pins the request-side mirror of
// zero-copy: byte-identical instance documents resolve to the same
// decoded *model.Instance (one decode total), different documents to
// different instances, and the null/absent instance still surfaces the
// "missing instance" bad request instead of a zero-value instance.
func TestDecodeCacheSharesInstances(t *testing.T) {
	p := smallPlanner(nil)
	defer p.Close()
	req := testInstance(t, "uniform", 3, 9, 21)
	raw, err := json.Marshal(req.Instance)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.decodeInstance(raw)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.decodeInstance(append([]byte(nil), raw...))
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("byte-identical instance decoded twice")
	}
	if got := p.Metrics(); got.DecodeHits != 1 || got.DecodeMisses != 1 {
		t.Fatalf("decode ledger hits=%d misses=%d, want 1/1", got.DecodeHits, got.DecodeMisses)
	}
	other := testInstance(t, "uniform", 3, 9, 22)
	rawOther, _ := json.Marshal(other.Instance)
	second, err := p.decodeInstance(rawOther)
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("different documents shared a decoded instance")
	}
	for _, raw := range []json.RawMessage{nil, json.RawMessage("null")} {
		ins, err := p.decodeInstance(raw)
		if err != nil || ins != nil {
			t.Fatalf("null instance: got (%v, %v), want (nil, nil)", ins, err)
		}
	}
	if _, err := p.decodeInstance(json.RawMessage(`{"m":0,"n":0}`)); err == nil {
		t.Fatal("invalid instance decoded without error")
	}
}

// discardRW is a ResponseWriter for serving benchmarks: header map is
// real (handlers set Content-Type/Length), bodies go nowhere.
type discardRW struct{ h http.Header }

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardRW) WriteHeader(int)             {}

// benchServe measures steady-state hit serving for one endpoint: the
// request body is pre-encoded once and rewound per iteration, so the
// measured allocations are the serving path's own.
func benchServe(b *testing.B, path string, reqBody any, prime func(p *Planner)) {
	p := smallPlanner(func(c *Config) { c.Workers = 1; c.TrialWorkers = 1 })
	defer p.Close()
	srv := NewServer(p)
	prime(p)
	payload, err := json.Marshal(reqBody)
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(payload)
	req, err := http.NewRequest(http.MethodPost, path, io.NopCloser(rd))
	if err != nil {
		b.Fatal(err)
	}
	w := &discardRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(payload)
		req.Body = io.NopCloser(rd)
		srv.ServeHTTP(w, req)
	}
}

// BenchmarkServePlanHit is the CI allocation guard for the single-plan
// hit path: a cache hit must serve by splicing the stored frame, never by
// re-marshaling the payload.
func BenchmarkServePlanHit(b *testing.B) {
	req := testInstanceB(b, "uniform", 4, 16, 3)
	benchServe(b, "/v1/plan", req, func(p *Planner) {
		if _, err := p.Plan(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkServeBatchHit guards the streaming batch envelope: 16 warm
// items served per request, every payload spliced from its cached frame.
func BenchmarkServeBatchHit(b *testing.B) {
	items := make([]PlanRequest, 16)
	for i := range items {
		items[i] = *testInstanceB(b, "uniform", 4, 12, int64(100+i))
	}
	benchServe(b, "/v1/plan/batch", &BatchPlanRequest{Items: items}, func(p *Planner) {
		for i := range items {
			if _, err := p.Plan(context.Background(), &items[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// testInstanceB is testInstance for benchmarks.
func testInstanceB(b *testing.B, family string, m, n int, seed int64) *PlanRequest {
	b.Helper()
	ins, err := workload.Generate(workload.Spec{Family: family, M: m, N: n, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return &PlanRequest{Instance: ins}
}
