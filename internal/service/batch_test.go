package service

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sched"
)

// canonicalPlanJSON marshals a plan response with its serving-source flags
// cleared: the canonical payload batch items carry, and the form in which
// single and batch responses are comparable regardless of cache state.
func canonicalPlanJSON(t *testing.T, resp *PlanResponse) string {
	t.Helper()
	if resp == nil {
		t.Fatal("nil plan response")
	}
	c := *resp
	c.Cached, c.Coalesced = false, false
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// jsonClone decodes a fresh copy of an instance-bearing request, so batch
// items share content but not pointers with their originals — the service
// must dedupe by fingerprint, never by pointer.
func jsonClone(t *testing.T, req *PlanRequest) PlanRequest {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var out PlanRequest
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchMixedItems drives one batch through every per-item path at
// once: a fresh compute, an intra-batch duplicate (by content, not
// pointer), a pre-cached item, a missing instance, and an unsupported
// class — and checks the per-item results, the summary reconciliation,
// and payload equality with the single endpoint.
func TestBatchMixedItems(t *testing.T) {
	p := smallPlanner(nil)
	ctx := context.Background()

	fresh := testInstance(t, "uniform", 4, 8, 1)
	warm := testInstance(t, "uniform", 4, 8, 2)
	forest := testInstance(t, "forest", 3, 10, 3)
	warmResp, err := p.Plan(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}

	req := &BatchPlanRequest{Items: []PlanRequest{
		*fresh,
		jsonClone(t, fresh), // duplicate content, distinct pointers
		jsonClone(t, warm),
		{}, // missing instance
		*forest,
	}}
	resp, err := p.PlanBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Size != 5 || resp.OK != 3 || resp.Errors != 2 {
		t.Fatalf("summary: %+v", resp)
	}
	if resp.Cached != 1 || resp.Computed != 1 || resp.Coalesced != 1 {
		t.Fatalf("sources: %+v", resp)
	}
	if resp.CostUnits != 1 { // one small computed group
		t.Fatalf("cost units = %d", resp.CostUnits)
	}

	wantSources := []string{sourceComputed, sourceCoalesced, sourceCached, "", ""}
	for i, it := range resp.Items {
		if want := wantSources[i]; it.Source != want {
			t.Errorf("item %d source %q, want %q", i, it.Source, want)
		}
	}
	if resp.Items[3].Status != "error" || !strings.Contains(resp.Items[3].Error, "missing instance") {
		t.Errorf("missing-instance item: %+v", resp.Items[3])
	}
	if resp.Items[4].Status != "error" || !strings.Contains(resp.Items[4].Error, "class") {
		t.Errorf("forest item: %+v", resp.Items[4])
	}

	// Payloads are canonical (no serving flags set) and equal to the
	// single endpoint's, item for item.
	singleFresh, err := smallPlanner(nil).Plan(ctx, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalPlanJSON(t, resp.Items[0].Plan), canonicalPlanJSON(t, singleFresh); got != want {
		t.Errorf("fresh payload differs from single plan:\n%s\n%s", got, want)
	}
	if got, want := canonicalPlanJSON(t, resp.Items[1].Plan), canonicalPlanJSON(t, resp.Items[0].Plan); got != want {
		t.Errorf("duplicate payload differs from its first occurrence")
	}
	if got, want := canonicalPlanJSON(t, resp.Items[2].Plan), canonicalPlanJSON(t, warmResp); got != want {
		t.Errorf("cached payload differs from the earlier single response")
	}
	if resp.Items[0].Plan.Cached || resp.Items[0].Plan.Coalesced || resp.Items[2].Plan.Cached {
		t.Error("batch payloads must not carry serving flags; the envelope Source does")
	}

	// Per-item cache accounting: 1 hit (warm item), 2 misses (fresh + its
	// duplicate), 1 coalesced (the duplicate), and hit rate ≤ 1.
	snap := p.Metrics()
	if snap.CacheHits != 1 || snap.CacheMisses != 3 || snap.Coalesced != 1 {
		// 3 misses: warm's original single compute missed once too.
		t.Fatalf("cache accounting: %+v", snap)
	}
	if snap.CacheHitRate > 1 {
		t.Fatalf("hit rate %v > 1", snap.CacheHitRate)
	}
	if snap.Batches != 1 || snap.BatchItems != 5 || snap.BatchCached != 1 ||
		snap.BatchComputed != 1 || snap.BatchShared != 1 || snap.BatchErrors != 2 {
		t.Fatalf("batch metrics: %+v", snap)
	}
	if snap.BatchSizes.Count != 1 || snap.BatchSizes.Max < 4.5 {
		t.Fatalf("batch size histogram: %+v", snap.BatchSizes)
	}
}

func TestBatchEnvelopeValidation(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.MaxBatchItems = 4 })
	ctx := context.Background()
	if _, err := p.PlanBatch(ctx, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil request: %v", err)
	}
	if _, err := p.PlanBatch(ctx, &BatchPlanRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty batch: %v", err)
	}
	if _, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: make([]PlanRequest, 5)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversized batch: %v", err)
	}
	if _, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: make([]PlanRequest, 1), DeadlineMS: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative deadline: %v", err)
	}
	// A deadline big enough to overflow the nanosecond conversion must be
	// a 400, not an instantly-expired context failing every item.
	if _, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: make([]PlanRequest, 1), DeadlineMS: 1 << 60}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("overflowing deadline: %v", err)
	}
}

// TestBatchAdmissionWeighsItems pins the cost-model backpressure: a batch
// charges ⌈n·m/1024⌉ units per to-be-computed item against the queue
// budget, cache hits are free, an oversized batch is admissible only
// against an idle line, and a single item over the per-item budget fails
// alone without failing its batch.
func TestBatchAdmissionWeighsItems(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.Workers = 2; c.QueueDepth = 2 })
	ctx := context.Background()
	big := testInstance(t, "uniform", 33, 64, 9) // n·m = 2112 → 3 cost units

	// Idle line: cost 3 > QueueDepth 2, admitted anyway (a batch that can
	// never run is not backpressure, it is a dead endpoint).
	resp, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: []PlanRequest{*big}})
	if err != nil || resp.OK != 1 || resp.CostUnits != 3 {
		t.Fatalf("idle-line big batch: resp=%+v err=%v", resp, err)
	}

	// Same batch content is now cached: zero cost, admitted even with the
	// line fully occupied.
	p.queued.Add(int64(p.cfg.QueueDepth))
	resp, err = p.PlanBatch(ctx, &BatchPlanRequest{Items: []PlanRequest{jsonClone(t, big)}})
	if err != nil || resp.OK != 1 || resp.CostUnits != 0 || resp.Cached != 1 {
		t.Fatalf("cached batch under load: resp=%+v err=%v", resp, err)
	}

	// An uncached 3-unit batch against the occupied line: rejected.
	other := testInstance(t, "uniform", 33, 64, 10)
	if _, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: []PlanRequest{*other}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if snap := p.Metrics(); snap.Rejected != 1 {
		t.Fatalf("rejected = %d", snap.Rejected)
	}
	p.queued.Add(-int64(p.cfg.QueueDepth))

	// Per-item budget: the big item errors alone, its small sibling plans.
	tight := smallPlanner(func(c *Config) { c.MaxItemCost = 2 })
	small := testInstance(t, "uniform", 4, 8, 11)
	resp, err = tight.PlanBatch(ctx, &BatchPlanRequest{Items: []PlanRequest{*big, *small}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK != 1 || resp.Errors != 1 {
		t.Fatalf("per-item budget summary: %+v", resp)
	}
	if it := resp.Items[0]; it.Status != "error" || !strings.Contains(it.Error, "per-item budget") {
		t.Fatalf("big item: %+v", it)
	}
	if resp.Items[1].Status != "ok" {
		t.Fatalf("small item: %+v", resp.Items[1])
	}
}

// TestBatchDeadlinePartialResults pins partial-results mode: items that
// cannot finish by the deadline report per-item errors while the batch
// still succeeds. A computation the deadline strands with no other caller
// is abandoned at its slot-wait checkpoint — queue charge refunded,
// nothing cached — so a retry recomputes it rather than finding it warm.
func TestBatchDeadlinePartialResults(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.Workers = 1 })
	ctx := context.Background()
	warm := testInstance(t, "uniform", 3, 6, 20)
	if _, err := p.Plan(ctx, warm); err != nil {
		t.Fatal(err)
	}
	cold := testInstance(t, "uniform", 3, 6, 21)

	p.slots <- struct{}{} // occupy the only worker: cold items cannot start
	resp, err := p.PlanBatch(ctx, &BatchPlanRequest{
		Items:      []PlanRequest{jsonClone(t, warm), *cold},
		DeadlineMS: 30,
	})
	if err != nil {
		t.Fatalf("deadline mode must not fail the batch: %v", err)
	}
	if resp.OK != 1 || resp.Errors != 1 || resp.Items[0].Source != sourceCached {
		t.Fatalf("partial results: %+v", resp)
	}
	if it := resp.Items[1]; it.Status != "error" || !strings.Contains(it.Error, "deadline") {
		t.Fatalf("deadlined item: %+v", it)
	}

	// The stranded computation had no other caller: it must be abandoned
	// (charge refunded, never cached) instead of burning the worker.
	for p.Metrics().Abandoned != 1 {
		runtime.Gosched()
	}
	if q := p.queued.Load(); q != 0 {
		t.Fatalf("abandonment did not refund the queue charge: queued=%d", q)
	}
	<-p.slots // free the worker
	key := requestKey{fp: sched.FingerprintInstance(cold.Instance), kind: kindPlan, target: 0.5}
	if _, ok := p.cache.peek(key); ok {
		t.Fatal("abandoned batch computation landed in the cache")
	}
	// A retry recomputes the item from scratch and succeeds.
	resp, err = p.PlanBatch(ctx, &BatchPlanRequest{Items: []PlanRequest{jsonClone(t, cold)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Status != "ok" || resp.Items[0].Source != sourceComputed {
		t.Fatalf("retry after abandonment: %+v", resp.Items[0])
	}
	p.Close() // every detached goroutine must drain cleanly
}

// TestBatchCoalescesWithInFlightSingle holds the one worker busy, parks a
// single plan in the queue, then sends a batch for the same content: the
// batch item must attach to the single's flight (one compute total) and
// return the identical payload.
func TestBatchCoalescesWithInFlightSingle(t *testing.T) {
	p := smallPlanner(func(c *Config) { c.Workers = 1; c.QueueDepth = 8 })
	ctx := context.Background()
	req := testInstance(t, "uniform", 4, 8, 30)

	p.slots <- struct{}{} // stall the worker so the single stays in flight
	singleOut := make(chan *PlanResponse, 1)
	singleErr := make(chan error, 1)
	go func() {
		r, err := p.Plan(ctx, req)
		singleOut <- r
		singleErr <- err
	}()
	for p.queued.Load() == 0 { // the single is admitted and waiting
		runtime.Gosched()
	}

	batchOut := make(chan *BatchPlanResponse, 1)
	batchErr := make(chan error, 1)
	go func() {
		r, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: []PlanRequest{jsonClone(t, req)}})
		batchOut <- r
		batchErr <- err
	}()
	// Wait until the batch group has joined the single's flight.
	for {
		p.flight.mu.Lock()
		dups := 0
		for _, c := range p.flight.m {
			dups += c.dups
		}
		p.flight.mu.Unlock()
		if dups == 1 {
			break
		}
		runtime.Gosched()
	}

	<-p.slots // release the worker
	if err := <-singleErr; err != nil {
		t.Fatal(err)
	}
	if err := <-batchErr; err != nil {
		t.Fatal(err)
	}
	single, batch := <-singleOut, <-batchOut
	if batch.Coalesced != 1 || batch.Items[0].Source != sourceCoalesced {
		t.Fatalf("batch item should have coalesced: %+v", batch)
	}
	if got, want := canonicalPlanJSON(t, batch.Items[0].Plan), canonicalPlanJSON(t, single); got != want {
		t.Error("coalesced batch payload differs from the single's")
	}
	// One compute total: both callers missed, one led, one coalesced.
	snap := p.Metrics()
	if computes := snap.CacheMisses - snap.Coalesced; computes != 1 {
		t.Fatalf("computes = %d (misses=%d coalesced=%d)", computes, snap.CacheMisses, snap.Coalesced)
	}
}
