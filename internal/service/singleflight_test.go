package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	key := planKeyN(1)

	c, follower := g.join(key)
	if follower {
		t.Fatal("first joiner marked follower")
	}
	var wg sync.WaitGroup
	results := make([]any, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc, fol := g.join(key)
			if !fol {
				t.Errorf("waiter %d became leader", i)
				return
			}
			<-fc.done
			results[i] = fc.val
		}(i)
	}
	// Wait until every follower has attached (dups is written under the
	// group's mutex), then land the flight.
	for {
		g.mu.Lock()
		dups := g.m[key].dups
		g.mu.Unlock()
		if dups == 4 {
			break
		}
		runtime.Gosched()
	}
	g.finish(key, c, "computed", nil)
	wg.Wait()
	for i, v := range results {
		if v != "computed" {
			t.Fatalf("follower %d got %v", i, v)
		}
	}
	// The flight is gone afterwards: a new join leads a fresh one.
	c2, follower := g.join(key)
	if follower {
		t.Fatal("post-flight join coalesced with a finished flight")
	}
	g.finish(key, c2, "fresh", nil)
}

func TestFlightGroupDistinctKeysRunIndependently(t *testing.T) {
	var g flightGroup
	a, fa := g.join(planKeyN(1))
	b, fb := g.join(planKeyN(2))
	if fa || fb {
		t.Fatal("distinct keys coalesced")
	}
	g.finish(planKeyN(1), a, 1, nil)
	g.finish(planKeyN(2), b, 2, nil)
	if a.val.(int) != 1 || b.val.(int) != 2 {
		t.Fatalf("got %v, %v", a.val, b.val)
	}
}

func TestFlightGroupErrorShared(t *testing.T) {
	var g flightGroup
	key := planKeyN(3)
	wantErr := errors.New("boom")
	c, _ := g.join(key)
	waiterErr := make(chan error, 1)
	go func() {
		fc, _ := g.join(key)
		<-fc.done
		waiterErr <- fc.err
	}()
	for {
		g.mu.Lock()
		dups := g.m[key].dups
		g.mu.Unlock()
		if dups == 1 {
			break
		}
		runtime.Gosched()
	}
	g.finish(key, c, nil, wantErr)
	if err := <-waiterErr; !errors.Is(err, wantErr) {
		t.Fatalf("follower err = %v", err)
	}
}

// TestSpawnRecoversPanics pins the server-survival property: a panicking
// computation runs on a detached goroutine outside net/http's recover, so
// the planner's spawn must catch it, land the flight with an error, and
// leave the planner usable (one bad request 500s, the process lives).
func TestSpawnRecoversPanics(t *testing.T) {
	p := smallPlanner(nil)
	key := planKeyN(9)
	c, _ := p.flight.join(key)
	p.spawn(key, c, nil, func() (any, error) {
		panic("poisoned instance")
	})
	<-c.done
	if c.err == nil || !strings.Contains(c.err.Error(), "panicked") {
		t.Fatalf("flight error = %v", c.err)
	}
	// The planner still serves requests and Close still drains.
	if _, err := p.Plan(context.Background(), testInstance(t, "uniform", 3, 5, 91)); err != nil {
		t.Fatalf("planner dead after recovered panic: %v", err)
	}
	p.Close()
}
