package service

import (
	"repro/internal/baseline"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/sched"
)

// degradedPlan serves the brownout fallback: a greedy LPT list schedule
// (baseline.ListSchedule) built without LP, workspace, or worker slot —
// O(n·m) and allocation-light, so it stays cheap exactly when the planner
// is drowning. The response is openly degraded: Degraded is set, TStar
// and LowerBound stay zero (the fallback carries no optimality
// certificate), and it is never written to the response cache or shared
// through the flight table — a retry after the storm, or a concurrent
// caller patient enough to queue, gets the real LP-rounded plan.
func (p *Planner) degradedPlan(ins *model.Instance, fp sched.Fingerprint, target float64, class dag.Class) *PlanResponse {
	// Chains normalize target to 0 before keying (LP2 has no target
	// knob); the list schedule still needs a positive log-mass target, so
	// they fall back to LP1's default 1/2.
	eff := target
	if eff == 0 {
		eff = 0.5
	}
	resp := &PlanResponse{
		Fingerprint: fp.String(),
		Class:       class.String(),
		M:           ins.M,
		N:           ins.N,
		Target:      target,
		Degraded:    true,
	}
	resp.Machines = serializeRuns(baseline.ListSchedule(ins, eff), &resp.Length)
	p.metrics.degraded.Add(1)
	return resp
}
