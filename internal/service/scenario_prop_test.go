package service

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
	"repro/internal/scenario"
)

// propScenarios is the per-shape scenario count of the property suites
// (trimmed under -short). Every draw is deterministic in the logged seed,
// so a failure reproduces by its scenario index alone.
func propScenarios(t *testing.T) int {
	if testing.Short() {
		return 30
	}
	return 200
}

// propPlanner builds a planner sized for the property sweeps: enough
// queue for any generated batch, a cache big enough to never evict
// mid-comparison.
func propPlanner() *Planner {
	return NewPlanner(Config{Workers: 4, QueueDepth: 1024, CacheCap: 1 << 14})
}

// batchFor composes a batch of 1..5 items for one scenario: fresh
// instances, content-duplicates of earlier items in the same batch
// (decoded copies, so deduplication must go by fingerprint), repeats from
// earlier scenarios (cache-hit paths), and occasional invalid items
// (per-item error paths). history carries instances across scenarios.
func batchFor(t *testing.T, g *scenario.Gen, src *rng.SplitMix64, shape scenario.Shape, history *[]PlanRequest) []PlanRequest {
	t.Helper()
	n := 1 + int(src.Uint64()%5)
	items := make([]PlanRequest, 0, n)
	for k := 0; k < n; k++ {
		switch r := src.Float64(); {
		case r < 0.05:
			items = append(items, PlanRequest{}) // missing instance
		case r < 0.10 && len(*history) > 0:
			h := (*history)[int(src.Uint64()%uint64(len(*history)))]
			items = append(items, jsonCloneReq(t, &h))
		case r < 0.35 && len(items) > 0:
			dup := items[int(src.Uint64()%uint64(len(items)))]
			items = append(items, jsonCloneReq(t, &dup))
		default:
			ins, err := g.Instance(shape)
			if err != nil {
				t.Fatal(err)
			}
			item := PlanRequest{Instance: ins}
			if src.Float64() < 0.2 {
				item.Target = 0.25 + 0.5*src.Float64()
			}
			items = append(items, item)
			*history = append(*history, item)
		}
	}
	return items
}

// jsonCloneReq is jsonClone tolerant of invalid requests (a nil instance
// round-trips to a nil instance).
func jsonCloneReq(t *testing.T, req *PlanRequest) PlanRequest {
	t.Helper()
	if req.Instance == nil {
		return PlanRequest{Target: req.Target}
	}
	return jsonClone(t, req)
}

// TestPropertyBatchMatchesSequentialPlan is the batch≡map property: for
// every generated scenario, PlanBatch's per-item outcomes equal a
// sequential Plan call per item — identical canonical payloads for
// successes, identical error text for failures — across all four shapes
// (forest/layered items exercise the per-item rejection path on both
// sides).
func TestPropertyBatchMatchesSequentialPlan(t *testing.T) {
	ctx := context.Background()
	for _, shape := range scenario.Shapes {
		shape := shape
		t.Run(string(shape), func(t *testing.T) {
			g := scenario.New(1000 + int64(len(shape)))
			src := rng.New(2000 + int64(len(shape)))
			pSingle, pBatch := propPlanner(), propPlanner()
			var history []PlanRequest
			for sc := 0; sc < propScenarios(t); sc++ {
				items := batchFor(t, g, src, shape, &history)
				batch, err := pBatch.PlanBatch(ctx, &BatchPlanRequest{Items: items})
				if err != nil {
					t.Fatalf("scenario %d: batch failed as a whole: %v", sc, err)
				}
				okCount := 0
				for i := range items {
					item := items[i]
					single, serr := pSingle.Plan(ctx, &item)
					got := batch.Items[i]
					if serr != nil {
						if got.Status != "error" || got.Error != serr.Error() {
							t.Fatalf("scenario %d item %d: batch %+v vs single error %v", sc, i, got, serr)
						}
						continue
					}
					okCount++
					if got.Status != "ok" {
						t.Fatalf("scenario %d item %d: batch errored (%s) where single succeeded", sc, i, got.Error)
					}
					if bp, sp := canonicalPlanJSON(t, got.Plan), canonicalPlanJSON(t, single); bp != sp {
						t.Fatalf("scenario %d item %d: payloads differ\nbatch:  %s\nsingle: %s", sc, i, bp, sp)
					}
				}
				if batch.OK != okCount || batch.Size != len(items) || batch.OK+batch.Errors != batch.Size ||
					batch.Cached+batch.Computed+batch.Coalesced != batch.OK {
					t.Fatalf("scenario %d: summary does not reconcile: %+v (want ok=%d)", sc, batch, okCount)
				}
			}
			// The shared hit-rate invariant must survive the whole sweep.
			for _, p := range []*Planner{pSingle, pBatch} {
				if snap := p.Metrics(); snap.CacheHitRate > 1 {
					t.Fatalf("cache hit rate %v > 1 (%+v)", snap.CacheHitRate, snap)
				}
			}
		})
	}
}

// TestPropertyBatchOrderAndSplitInvariance: permuting a batch permutes its
// payloads and nothing else (the multiset of serving sources is
// preserved), and splitting a batch at any point — two sub-batches served
// in sequence — yields the same payloads item for item.
func TestPropertyBatchOrderAndSplitInvariance(t *testing.T) {
	ctx := context.Background()
	count := propScenarios(t) / 4
	if count < 10 {
		count = 10
	}
	for _, shape := range scenario.Shapes {
		shape := shape
		t.Run(string(shape), func(t *testing.T) {
			g := scenario.New(3000 + int64(len(shape)))
			src := rng.New(4000 + int64(len(shape)))
			for sc := 0; sc < count; sc++ {
				var history []PlanRequest
				items := batchFor(t, g, src, shape, &history)
				run := func(p *Planner, its []PlanRequest) *BatchPlanResponse {
					resp, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: its})
					if err != nil {
						t.Fatalf("scenario %d: %v", sc, err)
					}
					return resp
				}
				payload := func(r BatchItemResult) string {
					if r.Status != "ok" {
						return "error: " + r.Error
					}
					return canonicalPlanJSON(t, r.Plan)
				}
				base := run(propPlanner(), items)

				// Fisher–Yates off the deterministic source.
				perm := make([]int, len(items))
				for i := range perm {
					perm[i] = i
				}
				for i := len(perm) - 1; i > 0; i-- {
					j := int(src.Uint64() % uint64(i+1))
					perm[i], perm[j] = perm[j], perm[i]
				}
				permuted := make([]PlanRequest, len(items))
				for i, from := range perm {
					permuted[i] = items[from]
				}
				permResp := run(propPlanner(), permuted)
				for i, from := range perm {
					if payload(permResp.Items[i]) != payload(base.Items[from]) {
						t.Fatalf("scenario %d: payload changed under permutation (item %d→%d)\n%s\n%s",
							sc, from, i, payload(base.Items[from]), payload(permResp.Items[i]))
					}
				}
				if a, b := sourceMultiset(base), sourceMultiset(permResp); a != b {
					t.Fatalf("scenario %d: source multiset changed under permutation: %s vs %s", sc, a, b)
				}

				split := int(src.Uint64() % uint64(len(items)+1))
				pSplit := propPlanner()
				var parts []BatchItemResult
				if split > 0 {
					parts = append(parts, run(pSplit, items[:split]).Items...)
				}
				if split < len(items) {
					parts = append(parts, run(pSplit, items[split:]).Items...)
				}
				for i := range items {
					if payload(parts[i]) != payload(base.Items[i]) {
						t.Fatalf("scenario %d split %d: item %d differs\n%s\n%s",
							sc, split, i, payload(base.Items[i]), payload(parts[i]))
					}
				}
			}
		})
	}
}

func sourceMultiset(r *BatchPlanResponse) string {
	srcs := make([]string, 0, len(r.Items))
	for _, it := range r.Items {
		s := it.Source
		if it.Status != "ok" {
			s = "error"
		}
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	return fmt.Sprint(srcs)
}

// TestPropertyPaperInvariants checks the paper's machine-verifiable
// guarantees on every plannable generated instance: the rounded schedule
// assigns every job at least one step, its reported length is consistent
// with the machine rows, and the LP relaxation value t* — a lower bound on
// any schedule's expected mass delivery — does not exceed the Monte Carlo
// makespan estimate of the paper's own policy for the class (SEM for
// independent instances, the chain engine for chains). Seeds are fixed, so
// the Monte Carlo comparison is deterministic, not flaky.
func TestPropertyPaperInvariants(t *testing.T) {
	ctx := context.Background()
	for _, shape := range []scenario.Shape{scenario.Independent, scenario.Chains} {
		shape := shape
		t.Run(string(shape), func(t *testing.T) {
			g := scenario.New(5000 + int64(len(shape)))
			p := propPlanner()
			for sc := 0; sc < propScenarios(t); sc++ {
				ins, err := g.Instance(shape)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := p.Plan(ctx, &PlanRequest{Instance: ins})
				if err != nil {
					t.Fatalf("scenario %d (m=%d n=%d): %v", sc, ins.M, ins.N, err)
				}
				if math.IsNaN(resp.TStar) || math.IsInf(resp.TStar, 0) || resp.TStar < 0 {
					t.Fatalf("scenario %d: t* = %v", sc, resp.TStar)
				}

				// Every job is assigned, and the declared length covers
				// every machine row.
				steps := make([]int64, ins.N)
				for i, runs := range resp.Machines {
					var rowLen int64
					for _, r := range runs {
						if r.Job < 0 || r.Job >= ins.N || r.Steps <= 0 {
							t.Fatalf("scenario %d: bad run %+v on machine %d", sc, r, i)
						}
						steps[r.Job] += r.Steps
						rowLen += r.Steps
					}
					if rowLen > resp.Length {
						t.Fatalf("scenario %d: machine %d row length %d exceeds schedule length %d", sc, i, rowLen, resp.Length)
					}
				}
				for j, s := range steps {
					if s == 0 {
						t.Fatalf("scenario %d: job %d unassigned in the rounded schedule (m=%d n=%d t*=%v)", sc, j, ins.M, ins.N, resp.TStar)
					}
				}

				est, err := p.Estimate(ctx, &EstimateRequest{Instance: ins, Trials: 24, Seed: 7}, nil)
				if err != nil {
					t.Fatalf("scenario %d estimate: %v", sc, err)
				}
				if est.Mean < resp.TStar {
					t.Fatalf("scenario %d (m=%d n=%d): estimated makespan %v below t* %v — the LP bound is violated",
						sc, ins.M, ins.N, est.Mean, resp.TStar)
				}
				if resp.LowerBound > 0 && est.Mean < resp.LowerBound {
					t.Fatalf("scenario %d: estimated makespan %v below the Lemma 1 lower bound %v", sc, est.Mean, resp.LowerBound)
				}
			}
		})
	}
}
