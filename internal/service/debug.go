package service

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"

	"repro/internal/trace"
)

// debugTracesBody is what /debug/traces serves: whether tracing is on,
// the tracer's own ledger, and the kept traces — slowest-first and
// newest-first — rendered as human-readable views.
type debugTracesBody struct {
	Enabled  bool                `json:"enabled"`
	Tracer   trace.Stats         `json:"tracer"`
	Recorder trace.RecorderStats `json:"recorder"`
	Log      *trace.LogStats     `json:"log,omitempty"`
	Slowest  []trace.RecordView  `json:"slowest"`
	Recent   []trace.RecordView  `json:"recent"`
}

// handleDebugTraces serves the in-memory trace recorder. Query params:
// n (cap on recent traces, default 32), op (filter: plan|estimate|batch),
// outcome (filter: ok|error|rejected|canceled).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.planner.tracer
	body := debugTracesBody{
		Enabled: tr.Enabled(),
		Tracer:  tr.Stats(),
		Slowest: []trace.RecordView{},
		Recent:  []trace.RecordView{},
	}
	if rec := tr.Recorder(); rec != nil {
		body.Recorder = rec.Stats()
		n := 32
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		for i := range rec.Slowest() {
			body.Slowest = append(body.Slowest, rec.Slowest()[i].View())
		}
		recent := rec.Recent(n, r.URL.Query().Get("op"), r.URL.Query().Get("outcome"))
		for i := range recent {
			body.Recent = append(body.Recent, recent[i].View())
		}
	}
	if lg := tr.Log(); lg != nil {
		st := lg.Stats()
		body.Log = &st
	}
	writeJSON(w, http.StatusOK, body)
}

// VersionInfo identifies a running build: what /version serves and what
// suuload stamps into its report header so a load run is attributable to
// the exact binary it measured.
type VersionInfo struct {
	Module     string `json:"module"`
	Version    string `json:"version"`
	VCSRev     string `json:"vcs_revision,omitempty"`
	VCSTime    string `json:"vcs_time,omitempty"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// ReadVersionInfo assembles VersionInfo from the binary's embedded build
// metadata. Fields the toolchain didn't stamp (test binaries, go run)
// come back empty rather than failing.
func ReadVersionInfo() VersionInfo {
	vi := VersionInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		vi.Module = bi.Main.Path
		vi.Version = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				vi.VCSRev = kv.Value
			case "vcs.time":
				vi.VCSTime = kv.Value
			}
		}
	}
	return vi
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ReadVersionInfo())
}
