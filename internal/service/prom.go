package service

import (
	"bytes"
	"math"
	"sort"
	"strconv"
)

// Prometheus text exposition (version 0.0.4) rendered from the same
// MetricsSnapshot the JSON document serves — one snapshot, two formats,
// so a scrape and a JSON read within the same instant reconcile by
// construction. GET /metrics?format=prom returns this view.
//
// Naming: every series carries the suu_ prefix. Monotonic counters keep
// their JSON names (suu_plans_total); latency histograms become summaries
// with quantile labels plus _sum/_count, in seconds; stage attribution is
// one summary family suu_stage_seconds{stage="..."} — the family whose
// per-stage _sum lines reconcile against the endpoint summaries' _sum
// within one scrape.

// promWriter accumulates exposition lines with the small amount of
// formatting discipline the format demands (HELP/TYPE before the first
// sample of a family, no NaN for absent quantiles).
type promWriter struct {
	buf *bytes.Buffer
}

func (pw *promWriter) header(name, help, typ string) {
	pw.buf.WriteString("# HELP ")
	pw.buf.WriteString(name)
	pw.buf.WriteByte(' ')
	pw.buf.WriteString(help)
	pw.buf.WriteString("\n# TYPE ")
	pw.buf.WriteString(name)
	pw.buf.WriteByte(' ')
	pw.buf.WriteString(typ)
	pw.buf.WriteByte('\n')
}

func (pw *promWriter) sample(name, labels string, v float64) {
	pw.buf.WriteString(name)
	if labels != "" {
		pw.buf.WriteByte('{')
		pw.buf.WriteString(labels)
		pw.buf.WriteByte('}')
	}
	pw.buf.WriteByte(' ')
	if math.IsInf(v, 1) {
		pw.buf.WriteString("+Inf")
	} else {
		pw.buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	pw.buf.WriteByte('\n')
}

func (pw *promWriter) counter(name, help string, v uint64) {
	pw.header(name, help, "counter")
	pw.sample(name, "", float64(v))
}

func (pw *promWriter) gauge(name, help string, v float64) {
	pw.header(name, help, "gauge")
	pw.sample(name, "", v)
}

// summary emits one latency snapshot as a summary family. Labels (may be
// empty) are applied to every line including _sum and _count, so a
// labeled family (stages) stays one TYPE declaration.
func (pw *promWriter) summaryBody(name, labels string, l LatencySnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	pw.sample(name, labels+sep+`quantile="0.5"`, l.P50)
	pw.sample(name, labels+sep+`quantile="0.95"`, l.P95)
	pw.sample(name, labels+sep+`quantile="0.99"`, l.P99)
	pw.sample(name+"_sum", labels, l.Sum)
	pw.sample(name+"_count", labels, float64(l.Count))
}

func (pw *promWriter) summary(name, help string, l LatencySnapshot) {
	pw.header(name, help, "summary")
	pw.summaryBody(name, "", l)
}

// promMetrics renders the snapshot as Prometheus exposition text.
func promMetrics(sn MetricsSnapshot) []byte {
	buf := getBuf()
	defer putBuf(buf)
	pw := &promWriter{buf: buf}

	pw.gauge("suu_uptime_seconds", "Seconds since the planner started.", sn.UptimeSeconds)
	pw.counter("suu_plans_total", "Single plan requests served.", sn.Plans)
	pw.counter("suu_estimates_total", "Estimate requests served.", sn.Estimates)
	pw.counter("suu_batches_total", "Batch requests served.", sn.Batches)
	pw.counter("suu_errors_total", "Requests that failed.", sn.Errors)
	pw.counter("suu_canceled_total", "Requests abandoned by their clients.", sn.Canceled)
	pw.counter("suu_rejected_total", "Requests refused by admission control.", sn.Rejected)
	pw.counter("suu_coalesced_total", "Requests served off shared in-flight work.", sn.Coalesced)
	pw.gauge("suu_in_flight", "Requests currently being served.", float64(sn.InFlight))
	pw.counter("suu_degraded_total", "Brownout fallback plans served.", sn.Degraded)
	pw.counter("suu_deadline_abandoned_total", "Computations abandoned at their deadline.", sn.Abandoned)
	pw.counter("suu_retries_observed_total", "Requests confessing to being retries.", sn.RetriesSeen)
	pw.counter("suu_cache_hits_total", "Response LRU hits.", sn.CacheHits)
	pw.counter("suu_cache_misses_total", "Response LRU misses.", sn.CacheMisses)
	pw.gauge("suu_cache_hit_rate", "Cache plus coalesced hit fraction.", sn.CacheHitRate)
	pw.gauge("suu_cache_entries", "Response LRU resident entries.", float64(sn.CacheEntries))
	pw.counter("suu_batch_items_total", "Batch items across all batches.", sn.BatchItems)
	pw.counter("suu_batch_items_cached_total", "Batch items served from cache.", sn.BatchCached)
	pw.counter("suu_batch_items_computed_total", "Batch items computed fresh.", sn.BatchComputed)
	pw.counter("suu_batch_items_coalesced_total", "Batch items served off shared work.", sn.BatchShared)
	pw.counter("suu_batch_items_degraded_total", "Batch items served degraded.", sn.BatchDegraded)
	pw.counter("suu_batch_item_errors_total", "Batch items that failed.", sn.BatchErrors)
	pw.gauge("suu_retry_after_hint_seconds", "Current adaptive Retry-After hint.", sn.RetryAfterS)

	pw.counter("suu_payload_bytes_encoded_cache_total", "Payload bytes served by splicing pre-encoded frames.", sn.PayloadBytes.EncodedCache)
	pw.counter("suu_payload_bytes_cold_encode_total", "Payload bytes served from this request's own encode.", sn.PayloadBytes.ColdEncode)
	pw.counter("suu_frames_spliced_total", "Payloads served zero-copy from a cached frame.", sn.FramesSpliced)
	pw.counter("suu_cold_encodes_total", "Payloads that ran json.Marshal.", sn.ColdEncodes)
	pw.counter("suu_instance_decode_hits_total", "Request instances resolved from the decode cache.", sn.DecodeHits)
	pw.counter("suu_instance_decode_misses_total", "Request instances decoded from JSON.", sn.DecodeMisses)

	pw.counter("suu_plans_computed_total", "Plans computed by the engines (no tier served them).", sn.PlansComputed)
	pw.counter("suu_store_mem_hits_total", "Durable store memory-tier hits.", sn.StoreMemHits)
	pw.counter("suu_store_disk_hits_total", "Durable store disk-tier hits.", sn.StoreDiskHits)
	pw.counter("suu_store_peer_hits_total", "Durable store peer-fetch hits.", sn.StorePeerHits)
	pw.counter("suu_store_misses_total", "Store lookups no tier could serve.", sn.StoreMisses)
	pw.counter("suu_store_put_errors_total", "Store writes that failed.", sn.StorePutErrors)
	pw.gauge("suu_store_entries", "Durable store resident entries.", float64(sn.StoreEntries))
	pw.counter("suu_store_corrupt_dropped_total", "Corrupt store records quarantined.", sn.StoreCorrupt)
	pw.counter("suu_store_handoff_queued_total", "Hinted handoffs queued for down peers.", sn.StoreHandoffQueued)
	pw.counter("suu_store_handoff_drained_total", "Hinted handoffs delivered.", sn.StoreHandoffDrain)
	pw.counter("suu_store_handoff_dropped_total", "Hinted handoffs dropped.", sn.StoreHandoffDrop)
	pw.counter("suu_store_anti_entropy_pulled_total", "Records pulled by startup anti-entropy.", sn.StoreAntiEntropy)

	pw.summary("suu_plan_latency_seconds", "Single plan request latency.", sn.PlanLatency)
	pw.summary("suu_estimate_latency_seconds", "Estimate request latency.", sn.EstLatency)
	pw.summary("suu_batch_latency_seconds", "Batch request latency.", sn.BatchLatency)
	pw.summary("suu_store_mem_latency_seconds", "Store memory-tier hit latency.", sn.StoreMemLatency)
	pw.summary("suu_store_disk_latency_seconds", "Store disk-tier hit latency.", sn.StoreDiskLatency)
	pw.summary("suu_store_peer_latency_seconds", "Store peer-fetch hit latency.", sn.StorePeerLatency)

	if len(sn.Stages) > 0 {
		names := make([]string, 0, len(sn.Stages))
		for name := range sn.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		pw.header("suu_stage_seconds", "Per-stage latency attribution across traced requests.", "summary")
		for _, name := range names {
			pw.summaryBody("suu_stage_seconds", `stage="`+name+`"`, sn.Stages[name])
		}
	}
	if sn.Traced > 0 {
		pw.counter("suu_traced_total", "Requests that carried a trace context.", sn.Traced)
		pw.counter("suu_trace_sampled_total", "Traced requests kept by head sampling.", sn.TraceSampled)
		pw.counter("suu_trace_forced_total", "Traces force-kept (errors, degraded).", sn.TraceForced)
		pw.counter("suu_trace_ring_kept_total", "Traces stored in the debug ring.", sn.TraceRingKept)
		pw.counter("suu_trace_slow_kept_total", "Traces kept in the slowest-N list.", sn.TraceSlowKept)
		pw.counter("suu_trace_log_records_total", "Records written to the binary trace log.", sn.TraceLogRecords)
		pw.counter("suu_trace_log_bytes_total", "Bytes written to the binary trace log.", sn.TraceLogBytes)
	}

	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
