package service

import (
	"bytes"
	"container/list"
	"encoding/json"
	"sync"

	"repro/internal/model"
)

// The request-side half of zero-copy serving. Response payloads are
// encoded once and spliced thereafter (frame.go); this file is the
// mirror image for requests: an instance is *decoded* once and reused
// thereafter. The HTTP handlers capture each request's instance as raw
// JSON (json.RawMessage — a scan and a copy, no float parsing) and
// resolve it through a small LRU keyed by those bytes. A fleet of
// similar workloads re-sends the same instances over and over — the
// exact regime the response cache already exploits — and for a warm
// n=64/m=16 batch the instance decode is ~95% of server CPU, so this
// cache is what moves the serving throughput needle.
//
// Correctness does not ride on the hash: an entry stores the raw bytes
// it was decoded from, and a lookup must match them byte-for-byte
// (bytes.Equal) before the decoded instance is shared. A hash collision
// is therefore a harmless miss, never a wrong instance. Decoded
// instances are immutable after model.New validation (the planner only
// reads them), so sharing one pointer across concurrent requests is
// safe — the same contract cached responses already carry.

// decodeCacheDefaultBytes bounds the raw-key bytes the cache retains
// (decoded instances cost the same order of memory as their JSON).
const decodeCacheDefaultBytes = 32 << 20

type decodeCache struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[uint64]*list.Element
}

type decodeEntry struct {
	key uint64
	raw []byte
	ins *model.Instance
}

func newDecodeCache(capBytes int64) *decodeCache {
	if capBytes <= 0 {
		capBytes = decodeCacheDefaultBytes
	}
	return &decodeCache{cap: capBytes, ll: list.New(), items: make(map[uint64]*list.Element)}
}

// hashRaw is FNV-1a over the raw instance bytes. Collisions are a
// performance event only (the byte-compare in get rejects them), so one
// 64-bit lane is enough.
func hashRaw(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

func (c *decodeCache) get(key uint64, raw []byte) (*model.Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := e.Value.(*decodeEntry)
	if !bytes.Equal(ent.raw, raw) {
		return nil, false // hash collision: treat as a miss
	}
	c.ll.MoveToFront(e)
	return ent.ins, true
}

func (c *decodeCache) put(key uint64, raw []byte, ins *model.Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		// Same key raced in twice (or a collision replaces its victim):
		// keep the newest decode.
		ent := e.Value.(*decodeEntry)
		c.size += int64(len(raw)) - int64(len(ent.raw))
		ent.raw, ent.ins = raw, ins
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&decodeEntry{key: key, raw: raw, ins: ins})
		c.size += int64(len(raw))
	}
	for c.size > c.cap && c.ll.Len() > 1 {
		back := c.ll.Back()
		ent := back.Value.(*decodeEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.raw))
	}
}

// The wire request types mirror their API structs with the instance held
// as raw bytes: decoding one costs a scan and a copy, and the instance is
// resolved through the decode cache afterwards. The field sets must stay
// exactly in sync with PlanRequest / BatchPlanRequest / EstimateRequest —
// they are the same documents, read lazily.

type wirePlanRequest struct {
	Instance   json.RawMessage `json:"instance"`
	Target     float64         `json:"target,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
}

type wireBatchRequest struct {
	Items      []wirePlanRequest `json:"items"`
	DeadlineMS int64             `json:"deadline_ms,omitempty"`
}

type wireEstimateRequest struct {
	Instance   json.RawMessage `json:"instance"`
	Policy     string          `json:"policy,omitempty"`
	Trials     int             `json:"trials,omitempty"`
	Seed       int64           `json:"seed,omitempty"`
	Stream     bool            `json:"stream,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
}

// resolvePlanItem turns a wire plan item into the API struct, resolving
// its instance through the decode cache.
func (p *Planner) resolvePlanItem(wp *wirePlanRequest) (*PlanRequest, error) {
	ins, err := p.decodeInstance(wp.Instance)
	if err != nil {
		return nil, err
	}
	return &PlanRequest{Instance: ins, Target: wp.Target, DeadlineMS: wp.DeadlineMS}, nil
}

// jsonNull reports whether raw is the JSON null literal — the decoder
// hands it through verbatim, and it must behave exactly like an absent
// instance (a nil pointer field), not like a zero instance.
func jsonNull(raw []byte) bool { return len(raw) == 4 && string(raw) == "null" }

// decodeInstance resolves a request's raw instance bytes to a decoded
// instance, through the cache. The raw bytes are owned by the caller's
// request document and are retained by the cache (json.RawMessage copies
// out of the decoder's buffer, so retention is safe). Absent/null
// instances return nil — validation rejects them with the same "missing
// instance" error the typed decode path produced.
func (p *Planner) decodeInstance(raw json.RawMessage) (*model.Instance, error) {
	if len(raw) == 0 || jsonNull(raw) {
		return nil, nil
	}
	key := hashRaw(raw)
	if ins, ok := p.decode.get(key, raw); ok {
		p.metrics.decodeHits.Add(1)
		return ins, nil
	}
	ins := &model.Instance{}
	if err := json.Unmarshal(raw, ins); err != nil {
		return nil, badRequestf("decoding request: %v", err)
	}
	p.metrics.decodeMisses.Add(1)
	p.decode.put(key, raw, ins)
	return ins, nil
}
