package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
)

// Metrics is the planner's instrumentation: monotone counters on atomics
// (hot path: one Add each) and per-endpoint latency histograms behind one
// small mutex. Snapshot assembles the expvar-style view /metrics serves.
type Metrics struct {
	start     time.Time
	plans     atomic.Uint64 // completed /v1/plan computations or cache hits
	estimates atomic.Uint64 // same for /v1/estimate
	errors    atomic.Uint64 // requests that failed server-side
	canceled  atomic.Uint64 // callers that gave up waiting (client's doing, not ours)
	rejected  atomic.Uint64 // admission-control rejections (429s)
	coalesced atomic.Uint64 // requests served by another caller's flight or its just-cached result
	inflight  atomic.Int64  // admitted requests currently in the planner

	degraded          atomic.Uint64 // brownout fallback serves (groups/requests, not batch items)
	deadlineAbandoned atomic.Uint64 // computations stopped because every caller gave up
	retriesObserved   atomic.Uint64 // requests arriving with X-Suu-Attempt ≥ 2

	// Store-tier ledger: every storeGet lands in exactly one of the hit
	// counters (by the tier that served it) or storeMisses, and every
	// plan actually computed lands in plansComputed — so a warm-restart
	// assertion can reconcile "served from disk, computed nothing".
	storeMemHits   atomic.Uint64 // store lookups served by the mem tier
	storeDiskHits  atomic.Uint64 // served by the disk tier (segment log)
	storePeerHits  atomic.Uint64 // served by a peer replica
	storeMisses    atomic.Uint64 // store lookups no tier could answer
	storePutErrors atomic.Uint64 // persists that failed (full/failing store)
	plansComputed  atomic.Uint64 // plans actually computed (not served from LRU/store)

	// Zero-copy serving ledger: every payload frame written to a response
	// is attributed to exactly one side — spliced from a pre-encoded cache
	// frame (LRU, flight, or store hit: no Marshal ran for this serve) or
	// produced by a cold encode (this request's own computation, or a
	// degraded fallback). framesSpliced / (framesSpliced + coldEncodes)
	// therefore reconciles with the cache hit rate: a frame can only be
	// spliced because some earlier request's cold encode cached it.
	payloadBytesCache atomic.Uint64 // payload bytes served by splicing a pre-encoded frame
	payloadBytesCold  atomic.Uint64 // payload bytes served from this request's own encode
	framesSpliced     atomic.Uint64 // payloads served with zero json.Marshal
	coldEncodes       atomic.Uint64 // canonical payload encodes actually run

	// Request-side mirror of the ledger above: instances resolved from
	// the byte-keyed decoded-instance cache vs actually re-decoded (see
	// decodecache.go).
	decodeHits   atomic.Uint64
	decodeMisses atomic.Uint64

	mu      sync.Mutex
	planLat *stats.Histogram
	estLat  *stats.Histogram
	// encodeNS distributes the cost of cold payload encodes, in
	// nanoseconds — the time splicing saves on every hit.
	encodeNS *stats.Histogram

	// Per-tier store lookup latency, under the same mutex as the other
	// histograms.
	storeMemLat  *stats.Histogram
	storeDiskLat *stats.Histogram
	storePeerLat *stats.Histogram

	// Per-stage latency, indexed by trace.Stage, under the same mutex.
	// Stages are recorded only for traced requests (the HTTP layer creates
	// a trace.Ctx; library calls and Warmup do not), so every stage sample
	// belongs to a request the endpoint histograms also counted.
	stageLat [trace.NumStages]*stats.Histogram

	// Batch accounting lives under mu as plain counters (not atomics):
	// observeBatch updates the whole family plus two histograms in one
	// critical section, and snapshot reads under the same lock — so one
	// /metrics document always reconciles exactly:
	// batchItems = cached + computed + coalesced + degraded + errors.
	batches             uint64 // completed /v1/plan/batch requests
	batchItems          uint64 // items across completed batches
	batchItemsCached    uint64 // items served from the response LRU
	batchItemsComputed  uint64 // items whose batch led the computation
	batchItemsCoalesced uint64 // items served off shared work (flights, intra-batch duplicates)
	batchItemsDegraded  uint64 // items served the brownout fallback
	batchItemErrors     uint64 // per-item failures (validation, budget, compute, deadline)
	batchLat            *stats.Histogram
	batchSize           *stats.Histogram
}

func newMetrics() *Metrics {
	// Batch sizes are small integers; a 1..4096 log-scale histogram at 8
	// buckets per octave keeps the quantiles' relative error under ~9%.
	sizeHist, err := stats.NewHistogram(1, 4096, 8)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	// Cold encodes run from ~microseconds (tiny plans) to milliseconds
	// (near-cap instances); 100ns..10s covers both edges with clamping.
	encodeHist, err := stats.NewHistogram(100, 1e10, 8)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	m := &Metrics{
		start:        time.Now(),
		planLat:      stats.NewLatencyHistogram(),
		estLat:       stats.NewLatencyHistogram(),
		encodeNS:     encodeHist,
		batchLat:     stats.NewLatencyHistogram(),
		batchSize:    sizeHist,
		storeMemLat:  stats.NewLatencyHistogram(),
		storeDiskLat: stats.NewLatencyHistogram(),
		storePeerLat: stats.NewLatencyHistogram(),
	}
	for i := range m.stageLat {
		m.stageLat[i] = stats.NewLatencyHistogram()
	}
	return m
}

// observeStage records one stage span of a traced request.
func (m *Metrics) observeStage(s trace.Stage, d time.Duration) {
	if int(s) >= len(m.stageLat) {
		return
	}
	m.mu.Lock()
	m.stageLat[s].Observe(d.Seconds())
	m.mu.Unlock()
}

// observeStore records one store lookup served by the named tier.
func (m *Metrics) observeStore(tier string, d time.Duration) {
	var h *stats.Histogram
	switch tier {
	case store.TierMem:
		m.storeMemHits.Add(1)
		h = m.storeMemLat
	case store.TierDisk:
		m.storeDiskHits.Add(1)
		h = m.storeDiskLat
	case store.TierPeer:
		m.storePeerHits.Add(1)
		h = m.storePeerLat
	default:
		return
	}
	m.mu.Lock()
	h.Observe(d.Seconds())
	m.mu.Unlock()
}

// observeEncode records one cold payload encode — the single Marshal a
// cacheable response ever gets, or a degraded fallback's per-request one.
func (m *Metrics) observeEncode(d time.Duration) {
	m.coldEncodes.Add(1)
	ns := float64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	m.mu.Lock()
	m.encodeNS.Observe(ns)
	m.mu.Unlock()
}

// addPayloadBytes attributes one served payload frame: spliced from a
// pre-encoded cache frame, or written off a cold encode.
func (m *Metrics) addPayloadBytes(n int, spliced bool) {
	if spliced {
		m.framesSpliced.Add(1)
		m.payloadBytesCache.Add(uint64(n))
	} else {
		m.payloadBytesCold.Add(uint64(n))
	}
}

// observe records one finished request of the given kind. A caller
// abandoning its wait is counted as canceled, not as a server error —
// the detached computation usually completes fine and lands in the cache.
func (m *Metrics) observe(kind uint8, d time.Duration, err error) {
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			m.canceled.Add(1)
		case errors.Is(err, ErrOverloaded):
			m.errors.Add(1)
			m.rejected.Add(1)
		default:
			m.errors.Add(1)
		}
		return
	}
	var h *stats.Histogram
	switch kind {
	case kindPlan:
		m.plans.Add(1)
		h = m.planLat
	case kindEstimate:
		m.estimates.Add(1)
		h = m.estLat
	}
	if h != nil {
		m.mu.Lock()
		h.Observe(d.Seconds())
		m.mu.Unlock()
	}
}

// observeBatch records one finished batch request. Error classification
// matches observe; per-item counts come off the response so they are only
// claimed for batches whose response was actually delivered.
func (m *Metrics) observeBatch(d time.Duration, resp *BatchPlanResponse, err error) {
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			m.canceled.Add(1)
		case errors.Is(err, ErrOverloaded):
			m.errors.Add(1)
			m.rejected.Add(1)
		default:
			m.errors.Add(1)
		}
		return
	}
	m.mu.Lock()
	m.batches++
	m.batchItems += uint64(resp.Size)
	m.batchItemsCached += uint64(resp.Cached)
	m.batchItemsComputed += uint64(resp.Computed)
	m.batchItemsCoalesced += uint64(resp.Coalesced)
	m.batchItemsDegraded += uint64(resp.Degraded)
	m.batchItemErrors += uint64(resp.Errors)
	m.batchLat.Observe(d.Seconds())
	m.batchSize.Observe(float64(resp.Size))
	m.mu.Unlock()
}

// LatencySnapshot is one endpoint's latency quantiles in seconds. Sum is
// the histogram's total observed seconds — the field that lets stage sums
// reconcile against endpoint sums within one document, and the _sum line
// of the Prometheus summary exposition.
type LatencySnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_s"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P95   float64 `json:"p95_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

func latencySnapshot(h *stats.Histogram) LatencySnapshot {
	if h.N() == 0 {
		return LatencySnapshot{}
	}
	return LatencySnapshot{
		Count: h.N(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// DistSnapshot summarizes a unitless distribution (batch sizes).
type DistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// distSnapshot shares latencySnapshot's extraction; the distinct type
// exists only for the unit-free JSON field names.
func distSnapshot(h *stats.Histogram) DistSnapshot {
	l := latencySnapshot(h)
	return DistSnapshot{Count: l.Count, Sum: l.Sum, Mean: l.Mean, P50: l.P50, P95: l.P95, P99: l.P99, Max: l.Max}
}

// MetricsSnapshot is the JSON document /metrics serves.
//
// Batch accounting: batches counts completed /v1/plan/batch requests and
// batch_items their items; every item lands in exactly one of
// batch_items_cached (response-LRU hit), batch_items_computed (this batch
// led the computation), batch_items_coalesced (served off shared work — an
// in-flight request's flight or an intra-batch duplicate),
// batch_items_degraded (brownout fallback), or batch_item_errors — the
// five always sum to batch_items within one document (they are updated
// and snapshotted under one lock). Batch items also feed the shared
// cache_hits/cache_misses/coalesced counters per item, so cache_hit_rate
// stays ≤ 1 with batches in play. All counters are monotone over the
// process lifetime.
//
// Resilience counters: degraded counts brownout fallback serves (one per
// /v1/plan request or unique batch group), deadline_abandoned counts
// computations stopped because every caller gave up, retries_observed
// counts requests that arrived carrying X-Suu-Attempt ≥ 2 (a retrying
// client's confession), retry_after_hint_s is the adaptive Retry-After a
// 429 would carry right now.
type MetricsSnapshot struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Plans         uint64          `json:"plans"`
	Estimates     uint64          `json:"estimates"`
	Batches       uint64          `json:"batches"`
	Errors        uint64          `json:"errors"`
	Canceled      uint64          `json:"canceled"`
	Rejected      uint64          `json:"rejected"`
	Coalesced     uint64          `json:"coalesced"`
	InFlight      int64           `json:"in_flight"`
	Degraded      uint64          `json:"degraded"`
	Abandoned     uint64          `json:"deadline_abandoned"`
	RetriesSeen   uint64          `json:"retries_observed"`
	CacheHits     uint64          `json:"cache_hits"`
	CacheMisses   uint64          `json:"cache_misses"`
	CacheHitRate  float64         `json:"cache_hit_rate"`
	CacheEntries  int             `json:"cache_entries"`
	BatchItems    uint64          `json:"batch_items"`
	BatchCached   uint64          `json:"batch_items_cached"`
	BatchComputed uint64          `json:"batch_items_computed"`
	BatchShared   uint64          `json:"batch_items_coalesced"`
	BatchDegraded uint64          `json:"batch_items_degraded"`
	BatchErrors   uint64          `json:"batch_item_errors"`
	RetryAfterS   float64         `json:"retry_after_hint_s"`
	PlanLatency   LatencySnapshot `json:"plan_latency"`
	EstLatency    LatencySnapshot `json:"estimate_latency"`
	BatchLatency  LatencySnapshot `json:"batch_latency"`
	BatchSizes    DistSnapshot    `json:"batch_size"`

	// Zero-copy serving: payload_bytes_served splits every served payload
	// frame by where its bytes came from — encoded_cache (spliced from a
	// pre-encoded frame; zero json.Marshal ran) vs cold_encode (this
	// request's own encode). frames_spliced / (frames_spliced +
	// cold_encodes) is the observable zero-copy hit rate; it reconciles
	// with cache_hit_rate because only a cold encode can plant a frame for
	// later splicing. encode_ns distributes the cold encodes' cost in
	// nanoseconds.
	PayloadBytes  PayloadBytesSnapshot `json:"payload_bytes_served"`
	FramesSpliced uint64               `json:"frames_spliced"`
	ColdEncodes   uint64               `json:"cold_encodes"`
	EncodeNS      DistSnapshot         `json:"encode_ns"`
	// The request-side mirror: instance_decode_hits counts request
	// instances resolved byte-for-byte from the decoded-instance cache
	// (no float parsing ran), instance_decode_misses the instances
	// actually decoded.
	DecodeHits   uint64 `json:"instance_decode_hits"`
	DecodeMisses uint64 `json:"instance_decode_misses"`

	// Store-tier counters (all zero when no store is configured). The
	// service-side view reconciles per document: every store lookup is
	// one of store_mem_hits/store_disk_hits/store_peer_hits/store_misses,
	// and plans_computed counts only plans no tier (LRU or store) could
	// serve. The store_* ledger fields below come from the store's own
	// Stats — corrupt records quarantined, hinted handoff flow, and the
	// startup anti-entropy pull.
	PlansComputed      uint64          `json:"plans_computed"`
	StoreMemHits       uint64          `json:"store_mem_hits"`
	StoreDiskHits      uint64          `json:"store_disk_hits"`
	StorePeerHits      uint64          `json:"store_peer_hits"`
	StoreMisses        uint64          `json:"store_misses"`
	StorePutErrors     uint64          `json:"store_put_errors"`
	StoreEntries       int             `json:"store_entries"`
	StoreCorrupt       uint64          `json:"store_corrupt_dropped"`
	StoreHandoffQueued uint64          `json:"store_handoff_queued"`
	StoreHandoffDrain  uint64          `json:"store_handoff_drained"`
	StoreHandoffDrop   uint64          `json:"store_handoff_dropped"`
	StoreAntiEntropy   uint64          `json:"store_anti_entropy_pulled"`
	StoreMemLatency    LatencySnapshot `json:"store_mem_latency"`
	StoreDiskLatency   LatencySnapshot `json:"store_disk_latency"`
	StorePeerLatency   LatencySnapshot `json:"store_peer_latency"`

	// Stage-level attribution (tentpole of the tracing layer). Stages maps
	// each canonical stage name (decode, queue, flight, store.mem,
	// store.disk, store.peer, store.miss, solve, round, encode, degrade)
	// to its latency distribution across traced requests. Stage samples
	// are recorded only for requests that carried a trace context, so
	// within one document each stage's sum_s is bounded by the endpoint
	// latency sums (decode excepted: it is measured in the HTTP handler,
	// before the planner's endpoint clock starts). The trace_* counters
	// ledger the tracer itself: traced = requests that carried a context,
	// trace_sampled of them won the head-sampling roll, trace_forced were
	// kept regardless (errors/degraded), trace_ring_kept landed in the
	// /debug/traces ring, trace_slow_kept in its slowest-N list, and
	// trace_log_records/_bytes count the binary trace log's output.
	Stages          map[string]LatencySnapshot `json:"stages,omitempty"`
	Traced          uint64                     `json:"traced,omitempty"`
	TraceSampled    uint64                     `json:"trace_sampled,omitempty"`
	TraceForced     uint64                     `json:"trace_forced,omitempty"`
	TraceRingKept   uint64                     `json:"trace_ring_kept,omitempty"`
	TraceSlowKept   uint64                     `json:"trace_slow_kept,omitempty"`
	TraceLogRecords uint64                     `json:"trace_log_records,omitempty"`
	TraceLogBytes   uint64                     `json:"trace_log_bytes,omitempty"`
}

// PayloadBytesSnapshot splits served payload bytes by source.
type PayloadBytesSnapshot struct {
	EncodedCache uint64 `json:"encoded_cache"`
	ColdEncode   uint64 `json:"cold_encode"`
}

// Snapshot assembles a consistent-enough view: counters are read
// individually (each is internally consistent; cross-counter skew of a
// few in-flight requests is fine for monitoring), histograms are cloned
// under their lock and read outside it.
func (m *Metrics) snapshot(cache *planCache) MetricsSnapshot {
	m.mu.Lock()
	planLat := m.planLat.Clone()
	estLat := m.estLat.Clone()
	encodeNS := m.encodeNS.Clone()
	batchLat := m.batchLat.Clone()
	batchSize := m.batchSize.Clone()
	storeMemLat := m.storeMemLat.Clone()
	storeDiskLat := m.storeDiskLat.Clone()
	storePeerLat := m.storePeerLat.Clone()
	var stageLat [trace.NumStages]*stats.Histogram
	for i, h := range m.stageLat {
		if h.N() > 0 {
			stageLat[i] = h.Clone()
		}
	}
	batches := m.batches
	batchItems := m.batchItems
	batchCached := m.batchItemsCached
	batchComputed := m.batchItemsComputed
	batchShared := m.batchItemsCoalesced
	batchDegraded := m.batchItemsDegraded
	batchErrors := m.batchItemErrors
	m.mu.Unlock()
	// coalesced is loaded before the cache counters: each coalesced.Add is
	// sequenced after its caller's misses.Add, so this order guarantees
	// every observed coalesce has its miss observed too (coalesced ≤
	// misses) and the rate below never exceeds 1.
	coalesced := m.coalesced.Load()
	hits, misses := cache.hits.Load(), cache.misses.Load()
	rate := 0.0
	if hits+misses > 0 {
		// Every coalesced follower first missed the LRU (so coalesced ≤
		// misses) but was then served off another caller's flight without
		// recomputation; counting it as a plain miss would understate the
		// hit rate under exactly the duplicate-heavy load the cache and
		// flight group exist for.
		rate = float64(hits+coalesced) / float64(hits+misses)
	}
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Plans:         m.plans.Load(),
		Estimates:     m.estimates.Load(),
		Batches:       batches,
		Errors:        m.errors.Load(),
		Canceled:      m.canceled.Load(),
		Rejected:      m.rejected.Load(),
		Coalesced:     coalesced,
		InFlight:      m.inflight.Load(),
		Degraded:      m.degraded.Load(),
		Abandoned:     m.deadlineAbandoned.Load(),
		RetriesSeen:   m.retriesObserved.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheHitRate:  rate,
		CacheEntries:  cache.Len(),
		BatchItems:    batchItems,
		BatchCached:   batchCached,
		BatchComputed: batchComputed,
		BatchShared:   batchShared,
		BatchDegraded: batchDegraded,
		BatchErrors:   batchErrors,
		PlanLatency:   latencySnapshot(planLat),
		EstLatency:    latencySnapshot(estLat),
		BatchLatency:  latencySnapshot(batchLat),
		BatchSizes:    distSnapshot(batchSize),

		PayloadBytes: PayloadBytesSnapshot{
			EncodedCache: m.payloadBytesCache.Load(),
			ColdEncode:   m.payloadBytesCold.Load(),
		},
		FramesSpliced: m.framesSpliced.Load(),
		ColdEncodes:   m.coldEncodes.Load(),
		EncodeNS:      distSnapshot(encodeNS),
		DecodeHits:    m.decodeHits.Load(),
		DecodeMisses:  m.decodeMisses.Load(),

		PlansComputed:    m.plansComputed.Load(),
		StoreMemHits:     m.storeMemHits.Load(),
		StoreDiskHits:    m.storeDiskHits.Load(),
		StorePeerHits:    m.storePeerHits.Load(),
		StoreMisses:      m.storeMisses.Load(),
		StorePutErrors:   m.storePutErrors.Load(),
		StoreMemLatency:  latencySnapshot(storeMemLat),
		StoreDiskLatency: latencySnapshot(storeDiskLat),
		StorePeerLatency: latencySnapshot(storePeerLat),
		Stages:           stageSnapshots(stageLat),
	}
}

// stageSnapshots renders the observed stages under their canonical names;
// stages never observed are omitted, so a tracing-off /metrics document
// looks exactly like it did before the tracing layer existed.
func stageSnapshots(stageLat [trace.NumStages]*stats.Histogram) map[string]LatencySnapshot {
	var out map[string]LatencySnapshot
	for i, h := range stageLat {
		if h == nil {
			continue
		}
		if out == nil {
			out = make(map[string]LatencySnapshot, trace.NumStages)
		}
		out[trace.Stage(i).String()] = latencySnapshot(h)
	}
	return out
}
