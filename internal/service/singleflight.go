package service

import "sync"

// flightGroup coalesces duplicate in-flight requests: the first caller of
// a key becomes the leader and computes (via the planner's spawn, which
// runs it detached and panic-isolated); every caller that arrives before
// the leader finishes waits for — and shares — the leader's result. Keys
// are content-addressed requestKeys, so "duplicate" means semantically
// identical work, not byte-identical request bodies.
//
// Each flight tracks its live waiters. A caller that gives up (its client
// deadline expired or it disconnected) leaves the flight; when the last
// waiter leaves before the result lands, the flight is orphaned — removed
// from the table so later arrivals start fresh, and its abandoned channel
// closed so the detached computation can stop burning pool capacity at its
// next checkpoint. Work with live waiters always runs to completion: one
// impatient caller never cancels a result other callers are waiting on.
//
// This is the classic singleflight shape split into join/finish, local to
// the service because the repo carries no external dependencies. Results
// are not retained after the flight lands — that is the plan cache's job.
type flightGroup struct {
	mu sync.Mutex
	m  map[requestKey]*flightCall
}

type flightCall struct {
	done      chan struct{}
	abandoned chan struct{} // closed when the last waiter leaves before done
	val       any
	err       error
	waiters   int  // callers currently waiting on done
	landed    bool // finish ran; abandoned can no longer close
	orphaned  bool // abandoned closed; the call is off the table
	dups      int  // followers attached so far; written under the group's mu
}

// join attaches the caller to key's flight, creating it if none is in
// flight. The second return reports whether the caller is a follower
// (someone else leads); a leader MUST eventually call finish or followers
// wait forever.
func (g *flightGroup) join(key requestKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[requestKey]*flightCall)
	}
	if c, inFlight := g.m[key]; inFlight {
		c.dups++
		c.waiters++
		return c, true
	}
	c := &flightCall{done: make(chan struct{}), abandoned: make(chan struct{}), waiters: 1}
	g.m[key] = c
	return c, false
}

// leave detaches a waiter that gave up before the result landed. The last
// leaver orphans the flight: the key is freed immediately (a later caller
// must not inherit a computation that may be about to stop) and abandoned
// is closed so the computation sees it at its next checkpoint. Callers
// served normally never leave; their waiter counts die with the call.
func (g *flightGroup) leave(key requestKey, c *flightCall) {
	g.mu.Lock()
	c.waiters--
	if c.waiters == 0 && !c.landed && !c.orphaned {
		c.orphaned = true
		if g.m[key] == c {
			delete(g.m, key)
		}
		close(c.abandoned)
	}
	g.mu.Unlock()
}

// finish lands the flight: records the result, removes the key (unless an
// orphaning already did, and never a successor flight under the same key),
// and wakes every waiter.
func (g *flightGroup) finish(key requestKey, c *flightCall, val any, err error) {
	c.val, c.err = val, err
	g.mu.Lock()
	c.landed = true
	if g.m[key] == c {
		delete(g.m, key)
	}
	g.mu.Unlock()
	close(c.done)
}
