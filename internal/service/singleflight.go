package service

import "sync"

// flightGroup coalesces duplicate in-flight requests: the first caller of
// a key becomes the leader and computes (via the planner's spawn, which
// runs it detached and panic-isolated); every caller that arrives before
// the leader finishes waits for — and shares — the leader's result. Keys
// are content-addressed requestKeys, so "duplicate" means semantically
// identical work, not byte-identical request bodies.
//
// This is the classic singleflight shape split into join/finish, local to
// the service because the repo carries no external dependencies. Results
// are not retained after the flight lands — that is the plan cache's job.
type flightGroup struct {
	mu sync.Mutex
	m  map[requestKey]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int // followers attached so far; written under the group's mu
}

// join attaches the caller to key's flight, creating it if none is in
// flight. The second return reports whether the caller is a follower
// (someone else leads); a leader MUST eventually call finish or followers
// wait forever.
func (g *flightGroup) join(key requestKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[requestKey]*flightCall)
	}
	if c, inFlight := g.m[key]; inFlight {
		c.dups++
		return c, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, false
}

// finish lands the flight: records the result, removes the key, and wakes
// every waiter.
func (g *flightGroup) finish(key requestKey, c *flightCall, val any, err error) {
	c.val, c.err = val, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}
