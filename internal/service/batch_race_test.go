package service

import (
	"context"
	"sync"
	"testing"
)

// TestBatchConcurrentSharedFingerprints fires overlapping batches — with
// intra-batch duplicates — and single plans for the same small instance
// set from many goroutines at once. It pins two contracts under -race:
// exactly one computation ever runs per unique fingerprint (observable as
// misses − coalesced on the shared counters: every caller that missed the
// LRU but did not lead a flight was served off shared work), and every
// response, batch or single, is byte-identical to the serial reference.
func TestBatchConcurrentSharedFingerprints(t *testing.T) {
	ctx := context.Background()
	const unique = 6
	reqs := make([]*PlanRequest, unique)
	want := make([]string, unique)
	serial := smallPlanner(nil)
	for i := range reqs {
		reqs[i] = testInstance(t, "uniform", 3, 8, int64(500+i))
		resp, err := serial.Plan(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonicalPlanJSON(t, resp)
	}

	p := smallPlanner(func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 4096 // the test measures dedupe, not shedding
		c.CacheCap = 4096   // no eviction: every fingerprint computes once, ever
	})
	var wg sync.WaitGroup
	errCh := make(chan error, 128)
	check := func(i int, got *PlanResponse) {
		if g := canonicalPlanJSON(t, got); g != want[i] {
			t.Errorf("instance %d: concurrent response differs from serial reference\n%s\n%s", i, g, want[i])
		}
	}
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				if g%2 == 0 {
					// A batch of all instances, rotated by goroutine and
					// round, plus a duplicate of its first item.
					items := make([]PlanRequest, 0, unique+1)
					for k := 0; k < unique; k++ {
						items = append(items, *reqs[(g+round+k)%unique])
					}
					items = append(items, items[0])
					resp, err := p.PlanBatch(ctx, &BatchPlanRequest{Items: items})
					if err != nil {
						errCh <- err
						return
					}
					for k, it := range resp.Items {
						if it.Status != "ok" {
							t.Errorf("batch item %d: %s", k, it.Error)
							continue
						}
						idx := (g + round + k) % unique
						if k == unique { // the duplicate tail item
							idx = (g + round) % unique
						}
						check(idx, it.Plan)
					}
				} else {
					idx := (g + round) % unique
					resp, err := p.Plan(ctx, reqs[idx])
					if err != nil {
						errCh <- err
						return
					}
					check(idx, resp)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	snap := p.Metrics()
	if computes := snap.CacheMisses - snap.Coalesced; computes != unique {
		t.Fatalf("computes = %d, want exactly %d (misses=%d coalesced=%d hits=%d)",
			computes, unique, snap.CacheMisses, snap.Coalesced, snap.CacheHits)
	}
	if snap.CacheHitRate > 1 {
		t.Fatalf("hit rate %v > 1", snap.CacheHitRate)
	}
	if snap.BatchItems != snap.BatchCached+snap.BatchComputed+snap.BatchShared+snap.BatchErrors {
		t.Fatalf("batch item accounting does not reconcile: %+v", snap)
	}
	if snap.BatchErrors != 0 || snap.InFlight != 0 {
		t.Fatalf("errors/in-flight after drain: %+v", snap)
	}
}
