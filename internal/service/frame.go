package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/trace"
)

// Zero-copy serving: the response LRU, the flight table, and the durable
// store all move cachedFrame values — the canonical decoded response
// paired with its compact wire encoding, produced exactly once (at compute
// time, or at store-decode time where the envelope already carries the
// bytes). Serving a hit is then a byte splice into the response, never a
// re-encode: the frame is shared read-only by every caller that hits it.
//
// The canonical payload frame is json.Marshal of the response struct with
// the serving flags (Cached, Coalesced) false — exactly the encoding batch
// item payloads have always used, byte-stable across the single endpoint,
// the batch endpoint, and the store tiers.

// frameTail is the canonical frame's closing bytes: Cached is the last
// always-encoded field of both PlanResponse and EstimateResponse, and the
// canonical value is false (Coalesced and Degraded are omitempty and false
// in anything cached). Splicing a hit's serving flags replaces this tail
// in place of re-encoding the payload.
const frameTail = `"cached":false}`

// cachedFrame pairs a canonical response with its pre-encoded payload
// frame. Both are shared between callers and must be treated as immutable.
type cachedFrame struct {
	val   any    // *PlanResponse or *EstimateResponse, serving flags false
	frame []byte // canonical compact JSON encoding of val
	// splice is the offset of frameTail within frame, or -1 when the tail
	// is not where the canonical encoder puts it (degraded payloads, or a
	// future field reorder) — such frames are served verbatim or fall back
	// to a flag-bearing re-encode.
	splice int
}

// newCachedFrame wraps an already-encoded canonical frame.
func newCachedFrame(v any, frame []byte) *cachedFrame {
	cf := &cachedFrame{val: v, frame: frame, splice: len(frame) - len(frameTail)}
	if cf.splice < 0 || string(frame[cf.splice:]) != frameTail {
		cf.splice = -1
	}
	return cf
}

// encodeFrame produces the canonical frame for a freshly built response —
// the one cold encode a cacheable payload ever gets. Metered into the
// encode_ns histogram, the cold-encode counter, and the request's encode
// stage span.
func (p *Planner) encodeFrame(v any, tc *trace.Ctx) (*cachedFrame, error) {
	start := time.Now()
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	p.metrics.observeEncode(time.Since(start))
	p.obsStage(tc, trace.StageEncode, start)
	return newCachedFrame(v, b), nil
}

// served is how a resolved request travels to the HTTP layer: the shared
// frame plus the serving flags that belong to this caller's envelope, not
// to the canonical payload.
type served struct {
	cf        *cachedFrame
	cached    bool
	coalesced bool
}

// planResponse materializes the struct view of a served plan for library
// callers, copying only when a serving flag must differ from the
// canonical (flags-false) value.
func (sv served) planResponse() *PlanResponse {
	resp := sv.cf.val.(*PlanResponse)
	if !sv.cached && !sv.coalesced {
		return resp
	}
	c := *resp
	c.Cached, c.Coalesced = sv.cached, sv.coalesced
	return &c
}

// estimateResponse is planResponse for estimates.
func (sv served) estimateResponse() *EstimateResponse {
	resp := sv.cf.val.(*EstimateResponse)
	if !sv.cached && !sv.coalesced {
		return resp
	}
	c := *resp
	c.Cached, c.Coalesced = sv.cached, sv.coalesced
	return &c
}

// appendServed writes the payload with this caller's serving flags spliced
// into the canonical frame: the frame bytes are shared, never mutated, and
// only the constant-size tail differs between callers. Flags-false serves
// (computed, degraded) copy the frame verbatim.
func appendServed(buf *bytes.Buffer, sv served) {
	cf := sv.cf
	if !sv.cached && !sv.coalesced {
		buf.Write(cf.frame)
		return
	}
	if cf.splice < 0 {
		// The tail is not where the splice expects it; re-encode with the
		// flags set rather than emit a corrupt document. Unreachable for
		// frames the canonical encoder produced.
		var b []byte
		switch v := cf.val.(type) {
		case *PlanResponse:
			c := *v
			c.Cached, c.Coalesced = sv.cached, sv.coalesced
			b, _ = json.Marshal(&c)
		case *EstimateResponse:
			c := *v
			c.Cached, c.Coalesced = sv.cached, sv.coalesced
			b, _ = json.Marshal(&c)
		}
		buf.Write(b)
		return
	}
	buf.Write(cf.frame[:cf.splice])
	if sv.cached {
		buf.WriteString(`"cached":true}`)
	} else {
		buf.WriteString(`"cached":false,"coalesced":true}`)
	}
}

// maxPooledBuf bounds what goes back into the buffer pool: one huge
// response (a near-cap instance is megabytes of JSON) must not pin its
// scratch forever under steady small-response traffic.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// bufioPool holds the batch envelope writers: batch responses stream item
// frames through a fixed-size buffer instead of materializing the whole
// document, so the response's memory cost is bounded by this buffer, not
// by the batch size.
var bufioPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) }}

func getBufio(w io.Writer) *bufio.Writer {
	bw := bufioPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putBufio(bw *bufio.Writer) {
	bw.Reset(io.Discard) // drop the ResponseWriter reference before pooling
	bufioPool.Put(bw)
}
