package service

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// request kinds, part of every cache/singleflight key.
const (
	kindPlan = iota + 1
	kindEstimate
)

// requestKey identifies a cacheable response: the instance fingerprint
// plus every request parameter that determines the result. Plan responses
// are pure functions of (instance, target); estimate responses add
// (policy, trials, seed) — the Monte Carlo engine is deterministic in
// those, so caching is exact, never approximate.
type requestKey struct {
	fp     sched.Fingerprint
	kind   uint8
	policy string
	target float64
	trials int
	seed   int64
}

// hash mixes the whole key into the shard selector. The fingerprint alone
// already spreads instances; params are folded in so one hot instance's
// plan and estimates do not all pile onto one shard.
func (k requestKey) hash() uint64 {
	h := k.fp.Lo ^ (k.fp.Hi << 1)
	h = fpMixLocal(h ^ uint64(k.kind))
	h = fpMixLocal(h ^ math.Float64bits(k.target))
	h = fpMixLocal(h ^ uint64(k.trials)<<32 ^ uint64(uint32(k.seed)))
	for i := 0; i < len(k.policy); i++ {
		h = (h ^ uint64(k.policy[i])) * 0x100000001b3
	}
	return fpMixLocal(h)
}

// fpMixLocal is the SplitMix64 finalizer (the service package's copy; the
// canonical one lives next to sched.Fingerprint).
func fpMixLocal(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// planCache is a sharded, bounded LRU over finished responses. Shards are
// independent: each holds its own lock, map, and intrusive LRU list, so
// concurrent requests for different instances never contend. Entries are
// exact values keyed by the full requestKey (the 64-bit shard hash only
// picks the shard — a hash collision costs a shared shard, never a wrong
// response). Eviction is per-shard LRU at cap/shards entries.
type planCache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Uint64
	// misses counts every get that found nothing — including callers that
	// then coalesce onto another request's flight. Metrics.snapshot folds
	// the coalesced count back in when it reports the hit rate.
	misses atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[requestKey]*cacheEntry
	// intrusive LRU list: head is most recently used, tail next to evict.
	head, tail *cacheEntry
	cap        int
}

type cacheEntry struct {
	key        requestKey
	val        any
	prev, next *cacheEntry
}

// newPlanCache builds a cache of roughly cap entries over the given number
// of shards (rounded up to a power of two).
func newPlanCache(cap, shards int) *planCache {
	if cap < 1 {
		cap = 1
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (cap + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &planCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{entries: make(map[requestKey]*cacheEntry), cap: perShard}
	}
	return c
}

func (c *planCache) shard(k requestKey) *cacheShard {
	return &c.shards[k.hash()&c.mask]
}

// get returns the cached response for k, bumping it to most-recently-used.
func (c *planCache) get(k requestKey) (any, bool) {
	v, ok := c.peek(k)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// peek is get without touching the hit/miss counters: the flight leader's
// late re-check (see runShared) serves a racing flight's cached result
// without double-counting a request that already recorded its miss. The
// value is copied out under the shard lock: put may refresh e.val in
// place, so reading it after unlock would race.
func (c *planCache) peek(k requestKey) (any, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	var v any
	if ok {
		s.moveToFront(e)
		v = e.val
	}
	s.mu.Unlock()
	return v, ok
}

// put inserts (or refreshes) k's response, evicting the shard's least
// recently used entry when the shard is full.
func (c *planCache) put(k requestKey, v any) {
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.val = v
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	if len(s.entries) >= s.cap {
		if victim := s.tail; victim != nil {
			s.unlink(victim)
			delete(s.entries, victim.key)
		}
	}
	e := &cacheEntry{key: k, val: v}
	s.entries[k] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Len returns the total number of cached entries.
func (c *planCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// shard list ops; callers hold s.mu.

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
