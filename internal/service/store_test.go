package service

import (
	"context"
	"testing"

	"repro/internal/store"
)

// planStoreInstances builds n distinct small instances.
func planStoreInstances(t *testing.T, n int) []*PlanRequest {
	t.Helper()
	reqs := make([]*PlanRequest, n)
	for i := range reqs {
		reqs[i] = testInstance(t, "uniform", 4, 10, int64(100+i))
	}
	return reqs
}

// samePlan compares the result-bearing fields, ignoring the serving
// provenance flags (Cached/Coalesced) that legitimately differ between a
// computed response and a store-served one.
func samePlan(a, b *PlanResponse) bool {
	if a.Fingerprint != b.Fingerprint || a.TStar != b.TStar || a.Length != b.Length ||
		a.LowerBound != b.LowerBound || len(a.Machines) != len(b.Machines) {
		return false
	}
	for i := range a.Machines {
		if len(a.Machines[i]) != len(b.Machines[i]) {
			return false
		}
		for j := range a.Machines[i] {
			if a.Machines[i][j] != b.Machines[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPlannerStoreRestartWarm is the durability acceptance test: plan a
// workload against a disk-backed store, tear the whole service down,
// rebuild it on the same directory, and replay the workload. Every answer
// must come off the disk tier — zero plans recomputed — byte-for-byte
// equal to the originals.
func TestPlannerStoreRestartWarm(t *testing.T) {
	dir := t.TempDir()
	const n = 20
	reqs := planStoreInstances(t, n)

	st1, err := store.Open(dir, store.DiskConfig{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p1 := smallPlanner(func(c *Config) { c.Store = st1 })
	first := make([]*PlanResponse, n)
	for i, req := range reqs {
		if first[i], err = p1.Plan(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	m1 := p1.Metrics()
	if m1.PlansComputed != n {
		t.Fatalf("first run computed %d, want %d", m1.PlansComputed, n)
	}
	if m1.StoreEntries != n {
		t.Fatalf("store entries %d, want %d", m1.StoreEntries, n)
	}
	p1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: fresh store over the same directory, fresh planner
	// (empty LRU), same workload.
	st2, err := store.Open(dir, store.DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	p2 := smallPlanner(func(c *Config) { c.Store = st2 })
	if err := p2.Warmup(); err != nil { // exercises the WaitWarm readiness gate
		t.Fatal(err)
	}
	defer p2.Close()
	for i, req := range reqs {
		resp, err := p2.Plan(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			t.Fatalf("restart plan %d not marked served-from-shared-work", i)
		}
		if !samePlan(first[i], resp) {
			t.Fatalf("restart plan %d differs from the original", i)
		}
	}
	m2 := p2.Metrics()
	if m2.PlansComputed != 0 {
		t.Fatalf("restart recomputed %d plans, want 0", m2.PlansComputed)
	}
	if m2.StoreDiskHits != n {
		t.Fatalf("store_disk_hits=%d, want %d", m2.StoreDiskHits, n)
	}
	if m2.StoreCorrupt != 0 {
		t.Fatalf("store_corrupt_dropped=%d", m2.StoreCorrupt)
	}
	if m2.StoreDiskLatency.Count != n {
		t.Fatalf("disk-tier latency histogram: %+v", m2.StoreDiskLatency)
	}

	// The LRU was primed by the read-through: a second pass never touches
	// the store again.
	for _, req := range reqs {
		if _, err := p2.Plan(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	m3 := p2.Metrics()
	if m3.StoreDiskHits != n || m3.PlansComputed != 0 {
		t.Fatalf("second pass: disk_hits=%d computed=%d", m3.StoreDiskHits, m3.PlansComputed)
	}

	// The batch path reads through the same store: a batch of the same
	// items on a third fresh planner computes nothing.
	st3, err := store.Open(dir, store.DiskConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	p3 := smallPlanner(func(c *Config) { c.Store = st3; c.MaxBatchItems = n })
	defer p3.Close()
	items := make([]PlanRequest, n)
	for i, r := range reqs {
		items[i] = *r
	}
	bresp, err := p3.PlanBatch(context.Background(), &BatchPlanRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if bresp.OK != n || bresp.Errors != 0 || bresp.Computed != 0 {
		t.Fatalf("batch over warm store: %+v", bresp)
	}
	if m := p3.Metrics(); m.PlansComputed != 0 || m.StoreDiskHits != n {
		t.Fatalf("batch metrics: computed=%d disk_hits=%d", m.PlansComputed, m.StoreDiskHits)
	}
	for i := range bresp.Items {
		if bresp.Items[i].Plan == nil || !samePlan(first[i], bresp.Items[i].Plan) {
			t.Fatalf("batch item %d differs from the original", i)
		}
	}
}

// TestStoreSharedAcrossPlanners pins the fleet value proposition in one
// process: two planners over one store compute each plan once, total.
func TestStoreSharedAcrossPlanners(t *testing.T) {
	st := store.NewMem(1<<22, 4)
	defer st.Close()
	reqs := planStoreInstances(t, 5)
	pA := smallPlanner(func(c *Config) { c.Store = st })
	defer pA.Close()
	pB := smallPlanner(func(c *Config) { c.Store = st })
	defer pB.Close()
	for _, req := range reqs {
		if _, err := pA.Plan(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	respA, err := pA.Plan(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		resp, err := pB.Plan(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && !samePlan(respA, resp) {
			t.Fatal("planners disagree through the shared store")
		}
	}
	mA, mB := pA.Metrics(), pB.Metrics()
	if mA.PlansComputed != 5 || mB.PlansComputed != 0 {
		t.Fatalf("computed A=%d B=%d, want 5/0", mA.PlansComputed, mB.PlansComputed)
	}
	if mB.StoreMemHits != 5 {
		t.Fatalf("B mem hits %d", mB.StoreMemHits)
	}
	if mB.StoreMemLatency.Count != 5 {
		t.Fatalf("B mem-tier latency histogram: %+v", mB.StoreMemLatency)
	}
}

// TestDegradedPlansNeverPersisted pins the satellite fix: a brownout
// fallback must not reach any store tier, or a moment of overload would
// haunt every replica from disk.
func TestDegradedPlansNeverPersisted(t *testing.T) {
	st := store.NewMem(1<<20, 1)
	defer st.Close()
	p := smallPlanner(func(c *Config) { c.Store = st })
	defer p.Close()

	key := requestKey{kind: kindPlan, policy: "lp1", target: 0.5}
	p.storePut(key, testFrame(t, &PlanResponse{Degraded: true, Length: 7}), nil)
	if got := st.Stats(); got.Puts != 0 || got.Entries != 0 {
		t.Fatalf("degraded plan persisted: %+v", got)
	}

	// The same call with a certified plan does persist — the guard is
	// specific, not a dead store.
	p.storePut(key, testFrame(t, &PlanResponse{Length: 7}), nil)
	if got := st.Stats(); got.Puts != 1 || got.Entries != 1 {
		t.Fatalf("certified plan not persisted: %+v", got)
	}
	// And a degraded response never overwrites a certified one.
	p.storePut(key, testFrame(t, &PlanResponse{Degraded: true}), nil)
	if v, ok := p.storeGet(key, nil); !ok {
		t.Fatal("stored plan unreadable")
	} else if v.val.(*PlanResponse).Degraded {
		t.Fatal("degraded response overwrote the stored plan")
	}
}

// TestStoreKeyDerivation pins that every result-determining request
// parameter separates the content address — a collision here would serve
// a wrong payload to a different request.
func TestStoreKeyDerivation(t *testing.T) {
	base := requestKey{kind: kindPlan, policy: "lp1", target: 0.5, trials: 100, seed: 42}
	variants := []requestKey{
		{kind: kindEstimate, policy: "lp1", target: 0.5, trials: 100, seed: 42},
		{kind: kindPlan, policy: "lp2", target: 0.5, trials: 100, seed: 42},
		{kind: kindPlan, policy: "lp1", target: 0.75, trials: 100, seed: 42},
		{kind: kindPlan, policy: "lp1", target: 0.5, trials: 101, seed: 42},
		{kind: kindPlan, policy: "lp1", target: 0.5, trials: 100, seed: 43},
	}
	seen := map[store.Key]int{storeKeyOf(base): -1}
	for i, v := range variants {
		k := storeKeyOf(v)
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d: %v", i, prev, k)
		}
		seen[k] = i
	}
	// Deterministic: the address is a pure function of the request.
	if storeKeyOf(base) != storeKeyOf(base) {
		t.Fatal("key derivation not deterministic")
	}
	// And fingerprint changes move both lanes.
	fp1 := base
	fp1.fp.Hi = 123
	fp2 := base
	fp2.fp.Hi = 124
	if storeKeyOf(fp1) == storeKeyOf(fp2) {
		t.Fatal("fingerprint ignored by key derivation")
	}
}

// TestStoreDecodeMismatchIsMiss pins the envelope check: bytes stored for
// one kind never decode as another, so even a key collision degrades to a
// recompute instead of a mistyped response.
func TestStoreDecodeMismatchIsMiss(t *testing.T) {
	b, err := encodeStored(kindPlan, testFrame(t, &PlanResponse{Length: 3}).frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeStored(kindEstimate, b); err == nil {
		t.Fatal("plan bytes decoded as an estimate")
	}
	v, err := decodeStored(kindPlan, b)
	if err != nil {
		t.Fatal(err)
	}
	if v.val.(*PlanResponse).Length != 3 {
		t.Fatal("roundtrip lost the payload")
	}
	if _, err := decodeStored(kindPlan, []byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}
