package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildLP1Shaped constructs an LP1-shaped covering/packing program:
// cover rows Σ_i ℓ_ij x_ij ≥ L over the given jobs, machine rows
// Σ_j x_ij ≤ t. Variables x_{i,pos} at i*k+pos, t at m*k.
func buildLP1Shaped(ell [][]float64, jobs []int, L float64) *Problem {
	m := len(ell)
	k := len(jobs)
	p := NewProblem(m*k + 1)
	p.C[m*k] = 1
	for pos, j := range jobs {
		var terms []Term
		for i := 0; i < m; i++ {
			if l := math.Min(ell[i][j], L); l > 0 {
				terms = append(terms, Term{i*k + pos, l})
			}
		}
		p.AddConstraint(terms, GE, L)
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, k+1)
		for pos := 0; pos < k; pos++ {
			terms = append(terms, Term{i*k + pos, 1})
		}
		terms = append(terms, Term{m * k, -1})
		p.AddConstraint(terms, LE, 0)
	}
	return p
}

func randomRates(rng *rand.Rand, m, n int) [][]float64 {
	ell := make([][]float64, m)
	for i := range ell {
		ell[i] = make([]float64, n)
		for j := range ell[i] {
			ell[i][j] = 0.05 + rng.Float64()
		}
	}
	return ell
}

// TestWarmIdenticalProblem: re-solving the same problem from its own
// optimal basis must stay on the warm path, reach the same objective, and
// need (near) zero pivots.
func TestWarmIdenticalProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ell := randomRates(rng, 6, 20)
	jobs := make([]int, 20)
	for j := range jobs {
		jobs[j] = j
	}
	p := buildLP1Shaped(ell, jobs, 0.5)
	s := NewSolver()
	cold, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Fatalf("cold status %v", cold.Status)
	}
	warm, err := s.SolveWarm(p, cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm {
		t.Fatalf("identical re-solve fell back to cold (fallbacks=%d)", s.WarmFallbacks)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
		t.Fatalf("warm obj %g, cold %g", warm.Obj, cold.Obj)
	}
	if warm.Iters > cold.Iters/2 {
		t.Fatalf("warm re-solve took %d pivots, cold took %d — basis not reused", warm.Iters, cold.Iters)
	}
}

// TestWarmShrinkAndDouble drives the solver through SEM's exact re-solve
// pattern: drop a random subset of jobs, double the target, warm-start
// from the previous basis after remapping columns. The warm objective must
// match a cold solve of the same problem to 1e-6, and the warm path must
// actually be taken most of the time (else the test is vacuous).
func TestWarmShrinkAndDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, n = 8, 32
	warmTaken := 0
	for trial := 0; trial < 10; trial++ {
		ell := randomRates(rng, m, n)
		jobs := make([]int, n)
		for j := range jobs {
			jobs[j] = j
		}
		L := 0.5
		s := NewSolver()
		prev, err := s.Solve(buildLP1Shaped(ell, jobs, L))
		if err != nil {
			t.Fatal(err)
		}
		prevJobs := jobs
		for round := 2; round <= 4 && len(prevJobs) > 2; round++ {
			// Survivors: each job independently kept with probability 0.4.
			var surv []int
			for _, j := range prevJobs {
				if rng.Float64() < 0.4 {
					surv = append(surv, j)
				}
			}
			if len(surv) == 0 {
				surv = prevJobs[:1]
			}
			L *= 2
			p := buildLP1Shaped(ell, surv, L)
			// Remap the previous basis into the new problem's encoding.
			posOf := make(map[int]int, len(prevJobs))
			for pos, j := range prevJobs {
				posOf[j] = pos
			}
			newPos := make(map[int]int, len(surv))
			for pos, j := range surv {
				newPos[j] = pos
			}
			prevK, k := len(prevJobs), len(surv)
			hint := make([]int, k+m)
			for r := range hint {
				var prevRow int
				if r < k {
					prevRow = posOf[surv[r]]
				} else {
					prevRow = prevK + (r - k)
				}
				hint[r] = remapBasisEntry(prev.Basis[prevRow], prevK, k, m, prevJobs, newPos)
			}
			warm, err := s.SolveWarm(p, hint)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := NewSolver().Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != Optimal || cold.Status != Optimal {
				t.Fatalf("trial %d round %d: warm %v cold %v", trial, round, warm.Status, cold.Status)
			}
			if diff := math.Abs(warm.Obj - cold.Obj); diff > 1e-6*(1+math.Abs(cold.Obj)) {
				t.Fatalf("trial %d round %d: warm obj %g, cold obj %g (diff %g)",
					trial, round, warm.Obj, cold.Obj, diff)
			}
			if r := p.Residual(warm.X); r > 1e-6 {
				t.Fatalf("trial %d round %d: warm residual %g", trial, round, r)
			}
			if warm.Warm {
				warmTaken++
			}
			prev, prevJobs = warm, surv
		}
	}
	if warmTaken == 0 {
		t.Fatal("warm path never taken across 10 shrink/double chains")
	}
}

// remapBasisEntry translates one Basis entry from the previous problem's
// encoding (prevK jobs) to the new problem's (k jobs), mirroring what
// rounding.Workspace does for LP1.
func remapBasisEntry(e, prevK, k, m int, prevJobs []int, newPos map[int]int) int {
	switch {
	case e == prevK*m: // t variable
		return k * m
	case e >= 0:
		i, pos := e/prevK, e%prevK
		if np, ok := newPos[prevJobs[pos]]; ok {
			return i*k + np
		}
		return NoHint
	default:
		rr := -1 - e
		if rr < prevK {
			if np, ok := newPos[prevJobs[rr]]; ok {
				return -1 - np
			}
			return NoHint
		}
		return -1 - (k + (rr - prevK))
	}
}

// TestWarmGarbageHint: a nonsense hint must not corrupt the answer — the
// solver either recovers or falls back to a cold solve.
func TestWarmGarbageHint(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ell := randomRates(rng, 5, 12)
	jobs := make([]int, 12)
	for j := range jobs {
		jobs[j] = j
	}
	p := buildLP1Shaped(ell, jobs, 0.5)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver()
	hints := [][]int{
		make([]int, len(p.Cons)), // all-zero: every row wants variable 0
		nil,                      // wrong length: must go straight to cold
	}
	scrambled := make([]int, len(p.Cons))
	for i := range scrambled {
		scrambled[i] = rng.Intn(p.NumVars+2*len(p.Cons)) - len(p.Cons)
	}
	hints = append(hints, scrambled)
	for hi, hint := range hints {
		got, err := s.SolveWarm(p, hint)
		if err != nil {
			t.Fatalf("hint %d: %v", hi, err)
		}
		if got.Status != Optimal || math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
			t.Fatalf("hint %d: got %v obj %g, want optimal %g", hi, got.Status, got.Obj, want.Obj)
		}
	}
}

// TestWarmInfeasible: warm starting an infeasible program must still
// report Infeasible (via the cold fallback), never a bogus optimum.
func TestWarmInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	s := NewSolver()
	hint := []int{0, 0}
	got, err := s.SolveWarm(p, hint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", got.Status)
	}
}

// TestSolverReuse: interleaving solves of different shapes and sizes on
// one workspace must give the same answers as fresh solvers.
func TestSolverReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSolver()
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(6)
		n := 2 + rng.Intn(24)
		ell := randomRates(rng, m, n)
		jobs := make([]int, n)
		for j := range jobs {
			jobs[j] = j
		}
		p := buildLP1Shaped(ell, jobs, 0.5)
		got, err := s.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status || math.Abs(got.Obj-want.Obj) > 1e-9*(1+math.Abs(want.Obj)) {
			t.Fatalf("trial %d: reused solver gave %v obj %g, fresh %v obj %g",
				trial, got.Status, got.Obj, want.Status, want.Obj)
		}
	}
}
