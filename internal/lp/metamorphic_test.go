package lp_test

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// buildLP1 assembles the LP1(J, L) relaxation of an instance directly (the
// same structure internal/rounding builds): variables x_{i,j} at i·n+j and
// t at m·n, cover rows Σ_i min(ℓ_ij, L)·x_ij ≥ L per job, machine rows
// Σ_j x_ij − t ≤ 0. Building it here keeps the test a pure LP-engine
// check with no rounding layer in the loop.
func buildLP1(ins *model.Instance, L float64) *lp.Problem {
	m, n := ins.M, ins.N
	p := lp.NewProblem(m*n + 1)
	p.C[m*n] = 1
	for j := 0; j < n; j++ {
		var terms []lp.Term
		for i := 0; i < m; i++ {
			if l := math.Min(ins.L[i][j], L); l > 0 {
				terms = append(terms, lp.Term{Var: i*n + j, Coef: l})
			}
		}
		p.AddConstraint(terms, lp.GE, L)
	}
	for i := 0; i < m; i++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			terms = append(terms, lp.Term{Var: i*n + j, Coef: 1})
		}
		terms = append(terms, lp.Term{Var: m * n, Coef: -1})
		p.AddConstraint(terms, lp.LE, 0)
	}
	return p
}

// permuted returns the instance with machines mapped through σ and jobs
// through π: q'[i][j] = q[σ(i)][π(j)].
func permuted(t *testing.T, ins *model.Instance, sigma, pi []int) *model.Instance {
	t.Helper()
	q := make([][]float64, ins.M)
	for i := range q {
		q[i] = make([]float64, ins.N)
		for j := range q[i] {
			q[i][j] = ins.Q[sigma[i]][pi[j]]
		}
	}
	out, err := model.New(ins.M, ins.N, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func randPerm(src *rng.SplitMix64, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(src.Uint64() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// TestLP1MetamorphicPermutationInvariance is a standing differential check
// the family-based suites do not cover: LP1's optimal value is invariant
// under any relabeling of machines and jobs, so for generated instances —
// including degenerate rates and duplicated job columns, which reorder
// pivot ties — the sparse engine, the dense engine, and both engines on a
// permuted copy must all report the same t* to 1e-6. A pivot-order or
// pricing bug that happens to cancel on nicely-ordered inputs cannot
// cancel on all 4 views at once.
func TestLP1MetamorphicPermutationInvariance(t *testing.T) {
	const L = 0.5
	count := 120
	if testing.Short() {
		count = 25
	}
	g := scenario.New(777)
	src := rng.New(778)
	sparse, dense := lp.NewSolver(), &lp.Solver{Dense: true}
	for sc := 0; sc < count; sc++ {
		ins, err := g.Instance(scenario.Independent)
		if err != nil {
			t.Fatal(err)
		}
		perm := permuted(t, ins, randPerm(src, ins.M), randPerm(src, ins.N))

		var tstars [4]float64
		for k, view := range []struct {
			ins    *model.Instance
			solver *lp.Solver
			name   string
		}{
			{ins, sparse, "sparse"},
			{ins, dense, "dense"},
			{perm, sparse, "sparse/permuted"},
			{perm, dense, "dense/permuted"},
		} {
			sol, err := view.solver.Solve(buildLP1(view.ins, L))
			if err != nil {
				t.Fatalf("scenario %d (%s, m=%d n=%d): %v", sc, view.name, view.ins.M, view.ins.N, err)
			}
			if sol.Status != lp.Optimal {
				t.Fatalf("scenario %d (%s, m=%d n=%d): status %v", sc, view.name, view.ins.M, view.ins.N, sol.Status)
			}
			tstars[k] = sol.Obj
		}
		for k := 1; k < 4; k++ {
			if math.Abs(tstars[k]-tstars[0]) > 1e-6 {
				t.Fatalf("scenario %d (m=%d n=%d): t* disagrees across views: sparse=%.12g dense=%.12g sparse/perm=%.12g dense/perm=%.12g",
					sc, ins.M, ins.N, tstars[0], tstars[1], tstars[2], tstars[3])
			}
		}
	}
}
