package lp

import (
	"fmt"
	"math"
)

// CoverInstance is the structured covering/packing program behind (LP1):
//
//	min t  s.t.  Σ_i a_ij·x_ij ≥ L_j  (cover job j),
//	             Σ_j x_ij ≤ t        (pack machine i),   x ≥ 0.
//
// Rates[i][j] = a_ij may be zero (machine useless for job). It is the
// common shape of every relaxation in the paper except (LP2)'s chain rows.
type CoverInstance struct {
	M, N    int
	Rates   [][]float64 // a_ij ≥ 0
	Demands []float64   // L_j > 0
}

// SolveCoverMWU approximates the covering/packing optimum to within
// (1+eps) using a width-free multiplicative-weights method: binary search
// on t, with an oracle that greedily routes each job's demand to the
// machines whose exponential-penalty load is lightest. It exists as a
// fast, numerically robust alternative to the simplex for large
// instances, and as the a-solver ablation's subject; the default pipeline
// uses the exact simplex.
func SolveCoverMWU(ins *CoverInstance, eps float64) ([][]float64, float64, error) {
	if eps <= 0 || eps > 0.5 {
		return nil, 0, fmt.Errorf("lp: mwu eps = %g outside (0, 0.5]", eps)
	}
	if ins.M <= 0 || ins.N <= 0 {
		return nil, 0, fmt.Errorf("lp: mwu empty instance")
	}
	if len(ins.Rates) != ins.M || len(ins.Demands) != ins.N {
		return nil, 0, fmt.Errorf("lp: mwu shape mismatch")
	}
	for j, d := range ins.Demands {
		if d <= 0 {
			return nil, 0, fmt.Errorf("lp: mwu demand[%d] = %g", j, d)
		}
		ok := false
		for i := 0; i < ins.M; i++ {
			if ins.Rates[i][j] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, 0, fmt.Errorf("lp: mwu job %d uncoverable", j)
		}
	}
	// Bracket t: lower = max_j L_j / Σ_i a_ij (perfect splitting),
	// upper = Σ_j L_j / max-rate-per-job routed to one machine.
	lo, hi := 0.0, 0.0
	for j := 0; j < ins.N; j++ {
		sum, best := 0.0, 0.0
		for i := 0; i < ins.M; i++ {
			sum += ins.Rates[i][j]
			if ins.Rates[i][j] > best {
				best = ins.Rates[i][j]
			}
		}
		if v := ins.Demands[j] / sum; v > lo {
			lo = v
		}
		hi += ins.Demands[j] / best
	}
	if hi < lo {
		hi = lo
	}
	if hi == 0 {
		return zeroMatrix(ins.M, ins.N), 0, nil
	}
	var bestX [][]float64
	bestT := hi
	// feasible(t) uses the penalty oracle; it is monotone in t up to the
	// approximation slack, so a plain bisection suffices.
	for iter := 0; iter < 40 && hi-lo > eps*lo/4; iter++ {
		mid := (lo + hi) / 2
		if x, ok := mwuFeasible(ins, mid, eps); ok {
			bestX, bestT = x, mid
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestX == nil {
		x, ok := mwuFeasible(ins, hi, eps)
		if !ok {
			return nil, 0, fmt.Errorf("lp: mwu failed to certify t = %g", hi)
		}
		bestX, bestT = x, hi
	}
	return bestX, bestT, nil
}

// mwuFeasible tries to route all demands with machine loads ≤ (1+eps)·t.
// Demands are split into small increments; each increment of job j goes to
// the machine minimizing the smoothed (soft-max) load increase per unit of
// coverage, the classic potential argument of multiplicative weights.
func mwuFeasible(ins *CoverInstance, t, eps float64) ([][]float64, bool) {
	if t <= 0 {
		return nil, false
	}
	m, n := ins.M, ins.N
	x := zeroMatrix(m, n)
	load := make([]float64, m)
	alpha := math.Log(float64(m)+1) / (eps * t) // penalty sharpness
	weight := make([]float64, m)
	for i := range weight {
		weight[i] = 1
	}
	// Route all jobs in interleaved increments so no job commits its whole
	// demand before seeing the load the others create — the round-robin
	// schedule is what makes the potential argument go through.
	steps := int(math.Ceil(8 / eps))
	for s := 0; s < steps; s++ {
		for j := 0; j < n; j++ {
			inc := ins.Demands[j] / float64(steps)
			// Pick the machine with the lowest penalized cost per unit
			// coverage: weight_i / a_ij.
			best, bestCost := -1, math.Inf(1)
			for i := 0; i < m; i++ {
				a := ins.Rates[i][j]
				if a <= 0 {
					continue
				}
				if c := weight[i] / a; c < bestCost {
					best, bestCost = i, c
				}
			}
			if best < 0 {
				return nil, false
			}
			d := inc / ins.Rates[best][j] // machine time for this increment
			x[best][j] += d
			load[best] += d
			weight[best] = math.Exp(alpha * load[best])
			if load[best] > (1+eps)*t {
				return nil, false
			}
		}
	}
	return x, true
}

func zeroMatrix(m, n int) [][]float64 {
	x := make([][]float64, m)
	for i := range x {
		x[i] = make([]float64, n)
	}
	return x
}
