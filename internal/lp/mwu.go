package lp

import (
	"fmt"
	"math"
)

// CoverInstance is the structured covering/packing program behind (LP1):
//
//	min t  s.t.  Σ_i a_ij·x_ij ≥ L_j  (cover job j),
//	             Σ_j x_ij ≤ t        (pack machine i),   x ≥ 0.
//
// Rates[i][j] = a_ij may be zero (machine useless for job). It is the
// common shape of every relaxation in the paper except (LP2)'s chain rows.
type CoverInstance struct {
	M, N    int
	Rates   [][]float64 // a_ij ≥ 0
	Demands []float64   // L_j > 0
}

// SolveCoverMWU approximates the covering/packing optimum to within
// (1+eps) using a width-free multiplicative-weights method: binary search
// on t, with an oracle that greedily routes each job's demand to the
// machines whose exponential-penalty load is lightest. It exists as a
// fast, numerically robust alternative to the simplex for large
// instances, and as the a-solver ablation's subject; the default pipeline
// uses the exact simplex.
func SolveCoverMWU(ins *CoverInstance, eps float64) ([][]float64, float64, error) {
	if eps <= 0 || eps > 0.5 {
		return nil, 0, fmt.Errorf("lp: mwu eps = %g outside (0, 0.5]", eps)
	}
	if ins.M <= 0 || ins.N <= 0 {
		return nil, 0, fmt.Errorf("lp: mwu empty instance")
	}
	if len(ins.Rates) != ins.M || len(ins.Demands) != ins.N {
		return nil, 0, fmt.Errorf("lp: mwu shape mismatch")
	}
	for j, d := range ins.Demands {
		if d <= 0 {
			return nil, 0, fmt.Errorf("lp: mwu demand[%d] = %g", j, d)
		}
		ok := false
		for i := 0; i < ins.M; i++ {
			if ins.Rates[i][j] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, 0, fmt.Errorf("lp: mwu job %d uncoverable", j)
		}
	}
	// Bracket t: lower = max_j L_j / Σ_i a_ij (perfect splitting),
	// upper = Σ_j L_j / max-rate-per-job routed to one machine.
	lo, hi := 0.0, 0.0
	for j := 0; j < ins.N; j++ {
		sum, best := 0.0, 0.0
		for i := 0; i < ins.M; i++ {
			sum += ins.Rates[i][j]
			if ins.Rates[i][j] > best {
				best = ins.Rates[i][j]
			}
		}
		if v := ins.Demands[j] / sum; v > lo {
			lo = v
		}
		hi += ins.Demands[j] / best
	}
	if hi < lo {
		hi = lo
	}
	if hi == 0 {
		return zeroMatrix(ins.M, ins.N), 0, nil
	}
	st := newMWUSolver(ins)
	var bestX [][]float64
	bestT := hi
	// feasible(t) uses the penalty oracle; it is monotone in t up to the
	// approximation slack, so a plain bisection suffices.
	for iter := 0; iter < 40 && hi-lo > eps*lo/4; iter++ {
		mid := (lo + hi) / 2
		if x, ok := st.feasible(mid, eps); ok {
			bestX, bestT = x, mid
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestX == nil {
		x, ok := st.feasible(hi, eps)
		if !ok {
			return nil, 0, fmt.Errorf("lp: mwu failed to certify t = %g", hi)
		}
		bestX, bestT = x, hi
	}
	return bestX, bestT, nil
}

// mwuSolver holds the oracle's reusable state across the bisection's
// feasibility probes: per-job candidate machine lists (machines with
// a_ij > 0, computed once, with −ln a_ij stored contiguously so the
// selection scan walks one small array instead of striding across Rates
// rows) and a lazy best-machine cache, plus the load and solution buffers.
//
// The oracle compares penalized costs exp(α·load_i)/a_ij in log space,
// α·load_i − ln a_ij — a strictly monotone transform that preserves every
// argmin while eliminating the per-increment math.Exp (which dominated
// the profile of the multiplicative form).
type mwuSolver struct {
	ins   *CoverInstance
	cand  [][]int32   // per job: machines with a_ij > 0
	nlogA [][]float64 // per job: −ln a_ij, aligned with cand

	load  []float64
	alpha float64 // penalty sharpness of the current feasibility probe
	// Lazy best-machine cache. Machine loads only grow, so log costs
	// α·load_i − ln a_ij are monotone nondecreasing; second[j], the
	// runner-up cost at the last full scan of job j's candidates, is
	// therefore a permanent lower bound on every non-best candidate's
	// current cost within one probe.
	best     []int32   // cached best candidate position per job (-1 = none)
	second   []float64 // runner-up log cost at cache time
	x, xKeep [][]float64
}

func newMWUSolver(ins *CoverInstance) *mwuSolver {
	st := &mwuSolver{
		ins:    ins,
		cand:   make([][]int32, ins.N),
		nlogA:  make([][]float64, ins.N),
		load:   make([]float64, ins.M),
		best:   make([]int32, ins.N),
		second: make([]float64, ins.N),
		x:      zeroMatrix(ins.M, ins.N),
		xKeep:  zeroMatrix(ins.M, ins.N),
	}
	for j := 0; j < ins.N; j++ {
		k := 0
		for i := 0; i < ins.M; i++ {
			if ins.Rates[i][j] > 0 {
				k++
			}
		}
		st.cand[j] = make([]int32, 0, k)
		st.nlogA[j] = make([]float64, 0, k)
		for i := 0; i < ins.M; i++ {
			if ins.Rates[i][j] > 0 {
				st.cand[j] = append(st.cand[j], int32(i))
				st.nlogA[j] = append(st.nlogA[j], -math.Log(ins.Rates[i][j]))
			}
		}
	}
	return st
}

// pick returns the candidate position (index into cand[j]/nlogA[j]) of
// the machine minimizing the penalized log cost α·load_i − ln a_ij over
// job j's candidates, or -1 if the job has none. The cached best is
// revalidated with one multiply-add: if its current cost is still
// strictly below the cached runner-up bound it must still be the unique
// minimum (all other costs only grew), so the O(|candidates|) rescan
// happens only when the best machine's load has drifted up to the bound.
// Ties on the rescan break toward the lowest machine index, like a plain
// full scan.
func (st *mwuSolver) pick(j int) int {
	cand, nlogA := st.cand[j], st.nlogA[j]
	load, alpha := st.load, st.alpha
	if b := st.best[j]; b >= 0 {
		if c := alpha*load[cand[b]] + nlogA[b]; c < st.second[j] {
			return int(b)
		}
	}
	best := int32(-1)
	bestCost, second := math.Inf(1), math.Inf(1)
	for k, i := range cand {
		c := alpha*load[i] + nlogA[k]
		if c < bestCost {
			best, bestCost, second = int32(k), c, bestCost
		} else if c < second {
			second = c
		}
	}
	st.best[j], st.second[j] = best, second
	return int(best)
}

// feasible tries to route all demands with machine loads ≤ (1+eps)·t.
// Demands are split into small increments; each increment of job j goes to
// the machine minimizing the smoothed (soft-max) load increase per unit of
// coverage, the classic potential argument of multiplicative weights. The
// returned matrix stays valid across later feasible calls (double
// buffering); only the most recent two results exist at a time, which is
// exactly what the bisection needs.
func (st *mwuSolver) feasible(t, eps float64) ([][]float64, bool) {
	if t <= 0 {
		return nil, false
	}
	ins := st.ins
	m, n := ins.M, ins.N
	x := st.x
	for i := range x {
		row := x[i]
		for j := range row {
			row[j] = 0
		}
	}
	st.alpha = math.Log(float64(m)+1) / (eps * t) // penalty sharpness
	for i := 0; i < m; i++ {
		st.load[i] = 0
	}
	for j := 0; j < n; j++ {
		st.best[j] = -1
	}
	// Route all jobs in interleaved increments so no job commits its whole
	// demand before seeing the load the others create — the round-robin
	// schedule is what makes the potential argument go through.
	steps := int(math.Ceil(8 / eps))
	for s := 0; s < steps; s++ {
		for j := 0; j < n; j++ {
			inc := ins.Demands[j] / float64(steps)
			k := st.pick(j)
			if k < 0 {
				return nil, false
			}
			best := int(st.cand[j][k])
			d := inc / ins.Rates[best][j] // machine time for this increment
			x[best][j] += d
			st.load[best] += d
			if st.load[best] > (1+eps)*t {
				return nil, false
			}
		}
	}
	// Hand out x and rotate buffers so the caller's kept solution is not
	// overwritten by the next probe.
	st.x, st.xKeep = st.xKeep, x
	return x, true
}

func zeroMatrix(m, n int) [][]float64 {
	x := make([][]float64, m)
	for i := range x {
		x[i] = make([]float64, n)
	}
	return x
}
