package lp

// Sparse LU factorization of the simplex basis, with a product-form eta
// file for pivot-to-pivot updates. The revised simplex never forms B⁻¹:
// it answers FTRAN (B x = v) and BTRAN (Bᵀ y = c) queries against
//
//	B = (L·U) · E₁ · E₂ · … · E_k
//
// where L·U factorizes the basis as of the last refactorization and each
// E_i is an elementary (eta) matrix recording one pivot. The factorization
// is left-looking with Markowitz-style threshold pivoting: each basis
// column is forward-eliminated against the already-factored steps, and the
// pivot is chosen among entries within luRelPivot of the column's largest
// as the one in the structurally sparsest row — large enough for stability,
// sparse enough to bound fill. The eta file is capped (luMaxEtas); when it
// fills, or when a pivot looks numerically unsafe, the solver refactorizes
// from scratch, which also recomputes the basic solution from the original
// right-hand side and thereby discards all accumulated drift (the LU-update
// property test bounds that drift at 1e-9 between refactorizations).
//
// Row/position bookkeeping: the basis is a set of m columns, one per basis
// "position" (positions correspond 1:1 to constraint rows for the Basis
// encoding). The factorization eliminates columns in an internal order;
// step k records which original row it pivoted (pivRow) and which basis
// position its column belongs to (stepPos). FTRAN results and eta vectors
// live in position space; BTRAN inputs are position-space cost vectors and
// its outputs are row-space duals.

import "math"

const (
	luPivotTol = 1e-10 // absolute floor for an acceptable factorization pivot
	luRelPivot = 0.1   // threshold pivoting: accept within 10% of the column max
	luDropTol  = 1e-13 // drop tolerance for factor and eta entries
	luMaxEtas  = 64    // eta-file length that triggers refactorization
)

// luFactors holds one basis factorization plus its eta file. All storage is
// grown monotonically and reused across factorizations.
type luFactors struct {
	m      int // basis dimension (= constraint rows)
	nsteps int // elimination steps completed (= m when the basis is full)

	pivRow    []int32 // step -> original row claimed as pivot
	stepPos   []int32 // step -> basis position of the eliminated column
	stepOfRow []int32 // original row -> step, -1 while unpivoted

	// L: unit lower triangular by elimination step; entries are original
	// rows that were unpivoted when the step ran (they pivot later).
	lPtr []int32
	lRow []int32
	lVal []float64

	// U: upper triangular by elimination step; entries reference earlier
	// steps, the diagonal is the pivot value.
	uPtr  []int32
	uStep []int32
	uVal  []float64
	uDiag []float64

	// Product-form eta file, in position space: eta e replaces basis
	// position etaPivPos[e] with a column whose FTRAN image had pivot
	// value etaPivVal[e] and off-pivot entries (etaPos, etaVal).
	nEtas     int
	etaPtr    []int32
	etaPos    []int32
	etaVal    []float64
	etaPivPos []int32
	etaPivVal []float64

	// scratch
	work  []float64 // dense accumulator, row space
	pat   []int32   // pattern of the column being eliminated
	stamp []int32   // epoch stamps validating work entries
	epoch int32
	sweep []float64 // FTRAN/BTRAN dense working vector
	stepv []float64 // step-space working vector for BTRAN
}

// begin resets the factorization for a basis of dimension m, keeping all
// backing arrays.
func (lu *luFactors) begin(m int) {
	lu.m = m
	lu.nsteps = 0
	lu.pivRow = lu.pivRow[:0]
	lu.stepPos = lu.stepPos[:0]
	if cap(lu.stepOfRow) < m {
		lu.stepOfRow = make([]int32, m)
	}
	lu.stepOfRow = lu.stepOfRow[:m]
	for i := range lu.stepOfRow {
		lu.stepOfRow[i] = -1
	}
	lu.lPtr = append(lu.lPtr[:0], 0)
	lu.lRow = lu.lRow[:0]
	lu.lVal = lu.lVal[:0]
	lu.uPtr = append(lu.uPtr[:0], 0)
	lu.uStep = lu.uStep[:0]
	lu.uVal = lu.uVal[:0]
	lu.uDiag = lu.uDiag[:0]
	lu.resetEtas()
	lu.work = growFloats(lu.work, m)
	lu.sweep = growFloats(lu.sweep, m)
	lu.stepv = growFloats(lu.stepv, m)
	lu.stamp = growInt32s(lu.stamp, m)
	lu.epoch = 0
}

// resetEtas empties the eta file (called by begin and after refactorizing).
func (lu *luFactors) resetEtas() {
	lu.nEtas = 0
	lu.etaPtr = append(lu.etaPtr[:0], 0)
	lu.etaPos = lu.etaPos[:0]
	lu.etaVal = lu.etaVal[:0]
	lu.etaPivPos = lu.etaPivPos[:0]
	lu.etaPivVal = lu.etaPivVal[:0]
}

// addColumn eliminates one basis column (given as parallel CSC row/value
// slices) against the factorization built so far and claims a pivot row
// for it. rowCnt carries static per-row nonzero counts for the Markowitz
// tie-break. It returns the elimination step and the claimed original row,
// or (-1, -1) when no entry in an unpivoted row reaches luPivotTol — the
// column is (near-)dependent on the steps already taken and the caller
// must skip or replace it. The caller owns assigning the step's basis
// position via setStepPos.
func (lu *luFactors) addColumn(rows []int32, vals []float64, rowCnt []int32) (step, pivotRow int) {
	lu.epoch++
	pat := lu.pat[:0]
	for t, r := range rows {
		if lu.stamp[r] != lu.epoch {
			lu.stamp[r] = lu.epoch
			lu.work[r] = vals[t]
			pat = append(pat, r)
		} else {
			lu.work[r] += vals[t]
		}
	}
	// Forward elimination: steps only ever update rows that were unpivoted
	// when they ran, so ascending step order is a correct lower solve.
	for k := 0; k < lu.nsteps; k++ {
		pr := lu.pivRow[k]
		if lu.stamp[pr] != lu.epoch {
			continue
		}
		v := lu.work[pr]
		if v == 0 {
			continue
		}
		for t := lu.lPtr[k]; t < lu.lPtr[k+1]; t++ {
			r := lu.lRow[t]
			if lu.stamp[r] != lu.epoch {
				lu.stamp[r] = lu.epoch
				lu.work[r] = 0
				pat = append(pat, r)
			}
			lu.work[r] -= lu.lVal[t] * v
		}
	}
	lu.pat = pat

	// Pivot choice: the largest eligible magnitude sets the stability bar;
	// among entries within luRelPivot of it, prefer the structurally
	// sparsest row (Markowitz-style fill control).
	pick, bestAbs := int32(-1), 0.0
	for _, r := range pat {
		if lu.stepOfRow[r] >= 0 {
			continue
		}
		if a := math.Abs(lu.work[r]); a > bestAbs {
			bestAbs, pick = a, r
		}
	}
	if bestAbs < luPivotTol {
		return -1, -1
	}
	bestCnt := rowCnt[pick]
	for _, r := range pat {
		if lu.stepOfRow[r] >= 0 || r == pick {
			continue
		}
		if math.Abs(lu.work[r]) >= luRelPivot*bestAbs && rowCnt[r] < bestCnt {
			pick, bestCnt = r, rowCnt[r]
		}
	}

	piv := lu.work[pick]
	k := lu.nsteps
	for _, r := range pat {
		if st := lu.stepOfRow[r]; st >= 0 {
			if v := lu.work[r]; v > luDropTol || v < -luDropTol {
				lu.uStep = append(lu.uStep, st)
				lu.uVal = append(lu.uVal, v)
			}
		}
	}
	lu.uPtr = append(lu.uPtr, int32(len(lu.uStep)))
	lu.uDiag = append(lu.uDiag, piv)
	inv := 1 / piv
	for _, r := range pat {
		if lu.stepOfRow[r] < 0 && r != pick {
			if v := lu.work[r] * inv; v > luDropTol || v < -luDropTol {
				lu.lRow = append(lu.lRow, r)
				lu.lVal = append(lu.lVal, v)
			}
		}
	}
	lu.lPtr = append(lu.lPtr, int32(len(lu.lRow)))
	lu.pivRow = append(lu.pivRow, pick)
	lu.stepPos = append(lu.stepPos, -1)
	lu.stepOfRow[pick] = int32(k)
	lu.nsteps++
	return k, int(pick)
}

// setStepPos records which basis position step k's column occupies.
func (lu *luFactors) setStepPos(step, pos int) { lu.stepPos[step] = int32(pos) }

// full reports whether every row has been pivoted (the basis is complete).
func (lu *luFactors) full() bool { return lu.nsteps == lu.m }

// ftran solves B x = v for a sparse v given as CSC row/value slices,
// writing x into out (position space, length m). out is fully overwritten.
func (lu *luFactors) ftran(rows []int32, vals []float64, out []float64) {
	w := lu.sweep
	for i := range w {
		w[i] = 0
	}
	for t, r := range rows {
		w[r] += vals[t]
	}
	lu.ftranWork(w, out)
}

// ftranDense is ftran for a dense row-space right-hand side.
func (lu *luFactors) ftranDense(v, out []float64) {
	copy(lu.sweep, v)
	lu.ftranWork(lu.sweep, out)
}

// ftranWork runs the L, U, and eta solves over the row-space vector w
// (clobbered), leaving the position-space solution in out.
func (lu *luFactors) ftranWork(w, out []float64) {
	for k := 0; k < lu.nsteps; k++ {
		v := w[lu.pivRow[k]]
		if v == 0 {
			continue
		}
		for t := lu.lPtr[k]; t < lu.lPtr[k+1]; t++ {
			w[lu.lRow[t]] -= lu.lVal[t] * v
		}
	}
	for k := lu.nsteps - 1; k >= 0; k-- {
		z := w[lu.pivRow[k]] / lu.uDiag[k]
		out[lu.stepPos[k]] = z
		if z == 0 {
			continue
		}
		for t := lu.uPtr[k]; t < lu.uPtr[k+1]; t++ {
			w[lu.pivRow[lu.uStep[t]]] -= lu.uVal[t] * z
		}
	}
	for e := 0; e < lu.nEtas; e++ {
		r := lu.etaPivPos[e]
		z := out[r] / lu.etaPivVal[e]
		out[r] = z
		if z == 0 {
			continue
		}
		for t := lu.etaPtr[e]; t < lu.etaPtr[e+1]; t++ {
			out[lu.etaPos[t]] -= lu.etaVal[t] * z
		}
	}
}

// btran solves Bᵀ y = c for a position-space c, writing the row-space dual
// into out (length m). c is not modified; out is fully overwritten.
func (lu *luFactors) btran(c, out []float64) {
	p := lu.sweep
	copy(p, c)
	for e := lu.nEtas - 1; e >= 0; e-- {
		r := lu.etaPivPos[e]
		s := p[r]
		for t := lu.etaPtr[e]; t < lu.etaPtr[e+1]; t++ {
			s -= lu.etaVal[t] * p[lu.etaPos[t]]
		}
		p[r] = s / lu.etaPivVal[e]
	}
	st := lu.stepv
	for k := 0; k < lu.nsteps; k++ {
		st[k] = p[lu.stepPos[k]]
	}
	for k := 0; k < lu.nsteps; k++ {
		s := st[k]
		for t := lu.uPtr[k]; t < lu.uPtr[k+1]; t++ {
			s -= lu.uVal[t] * st[lu.uStep[t]]
		}
		st[k] = s / lu.uDiag[k]
	}
	for k := lu.nsteps - 1; k >= 0; k-- {
		s := st[k]
		for t := lu.lPtr[k]; t < lu.lPtr[k+1]; t++ {
			s -= lu.lVal[t] * st[lu.stepOfRow[lu.lRow[t]]]
		}
		st[k] = s
	}
	for k := 0; k < lu.nsteps; k++ {
		out[lu.pivRow[k]] = st[k]
	}
}

// appendEta records a pivot: basis position r is replaced by a column whose
// FTRAN image is w (position space). w[r] must be the accepted pivot value.
func (lu *luFactors) appendEta(r int, w []float64) {
	for i, v := range w {
		if i == r {
			continue
		}
		if v > luDropTol || v < -luDropTol {
			lu.etaPos = append(lu.etaPos, int32(i))
			lu.etaVal = append(lu.etaVal, v)
		}
	}
	lu.etaPtr = append(lu.etaPtr, int32(len(lu.etaPos)))
	lu.etaPivPos = append(lu.etaPivPos, int32(r))
	lu.etaPivVal = append(lu.etaPivVal, w[r])
	lu.nEtas++
}
