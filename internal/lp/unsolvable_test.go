package lp

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestUnsolvableErrorTyping pins the contract the planning service builds
// its 422 mapping on: a size-capped sparse bailout matches ErrUnsolvable
// AND the underlying engine failure, and names the problem size.
func TestUnsolvableErrorTyping(t *testing.T) {
	p := &Problem{NumVars: 3, Cons: make([]Constraint, 2)}
	cause := fmt.Errorf("pivot stall: %w", errNumeric)
	err := unsolvableError(p, cause)
	if !errors.Is(err, ErrUnsolvable) {
		t.Error("unsolvableError must match ErrUnsolvable")
	}
	if !errors.Is(err, errNumeric) {
		t.Error("unsolvableError must preserve the engine failure cause")
	}
	if !strings.Contains(err.Error(), "2 rows") {
		t.Errorf("message should name the problem size, got %q", err.Error())
	}
}

// TestDenseFallbackFits pins the cap that decides between a dense re-solve
// and an ErrUnsolvable bailout.
func TestDenseFallbackFits(t *testing.T) {
	s := &Solver{}
	small := &Problem{NumVars: 100, Cons: make([]Constraint, 50)}
	if !s.denseFallbackFits(small) {
		t.Error("a 50×300 tableau is far under the cap")
	}
	huge := &Problem{NumVars: 4 << 20, Cons: make([]Constraint, 4096)}
	if s.denseFallbackFits(huge) {
		t.Error("a multi-billion-entry tableau must refuse the dense fallback")
	}
	empty := &Problem{NumVars: 10}
	if !s.denseFallbackFits(empty) {
		t.Error("zero constraints always fit")
	}
}
