package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// lp1FromInstance builds the LP1(jobs, L) relaxation from a workload
// instance's log-failure matrix, mirroring rounding.buildLP1: cover rows
// then machine rows, x_{i,pos} at i*k+pos, t at m*k.
func lp1FromInstance(t *testing.T, spec workload.Spec, L float64) *Problem {
	t.Helper()
	ins, err := workload.Generate(spec)
	if err != nil {
		t.Fatalf("%s: %v", spec.Family, err)
	}
	jobs := make([]int, ins.N)
	for j := range jobs {
		jobs[j] = j
	}
	k := len(jobs)
	m := ins.M
	p := NewProblem(m*k + 1)
	p.C[m*k] = 1
	for pos, j := range jobs {
		var terms []Term
		for i := 0; i < m; i++ {
			if l := math.Min(ins.L[i][j], L); l > 0 {
				terms = append(terms, Term{i*k + pos, l})
			}
		}
		if len(terms) == 0 {
			t.Fatalf("%s: job %d unreachable", spec.Family, j)
		}
		p.AddConstraint(terms, GE, L)
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, k+1)
		for pos := 0; pos < k; pos++ {
			terms = append(terms, Term{i*k + pos, 1})
		}
		terms = append(terms, Term{m * k, -1})
		p.AddConstraint(terms, LE, 0)
	}
	return p
}

// diffFamilies is every Table-1 instance family, including the degenerate
// specialist variant whose exactly-tied rates stress-test degenerate bases.
var diffFamilies = []string{
	"uniform", "skill", "specialist", "specialist-degen", "volunteer",
}

// TestSparseMatchesDenseFamilies is the differential solver test the
// sparse engine is held to: on LP1-shaped programs from every workload
// family, the sparse revised simplex and the dense tableau engine must
// agree on t* to 1e-6, and the sparse optimum must satisfy the constraints.
func TestSparseMatchesDenseFamilies(t *testing.T) {
	for _, family := range diffFamilies {
		for rep := 0; rep < 3; rep++ {
			for _, L := range []float64{0.5, 2} {
				spec := workload.Spec{
					Family: family, M: 8, N: 24, Seed: int64(1000*rep + 17), Groups: 4,
				}
				p := lp1FromInstance(t, spec, L)
				sv := NewSolver()
				sparse, err := sv.Solve(p)
				if err != nil {
					t.Fatalf("%s rep %d L=%g sparse: %v", family, rep, L, err)
				}
				if sv.DenseFallbacks != 0 {
					// A fallback would make this test compare dense vs
					// dense — vacuously green with a dead sparse engine.
					t.Fatalf("%s rep %d L=%g: sparse solve fell back to the dense engine", family, rep, L)
				}
				dense, err := (&Solver{Dense: true}).Solve(p)
				if err != nil {
					t.Fatalf("%s rep %d L=%g dense: %v", family, rep, L, err)
				}
				if sparse.Status != Optimal || dense.Status != Optimal {
					t.Fatalf("%s rep %d L=%g: sparse %v, dense %v", family, rep, L, sparse.Status, dense.Status)
				}
				if diff := math.Abs(sparse.Obj - dense.Obj); diff > 1e-6*(1+math.Abs(dense.Obj)) {
					t.Fatalf("%s rep %d L=%g: sparse t* = %.9g, dense t* = %.9g (diff %g)",
						family, rep, L, sparse.Obj, dense.Obj, diff)
				}
				if r := p.Residual(sparse.X); r > 1e-6 {
					t.Fatalf("%s rep %d L=%g: sparse residual %g", family, rep, L, r)
				}
			}
		}
	}
}

// TestSparseMatchesDenseGeneral runs the two engines against each other on
// random general LPs — mixed relations, negative right-hand sides,
// occasionally infeasible or unbounded — asserting identical statuses and
// matching optima.
func TestSparseMatchesDenseGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*10) - 4
		}
		nc := 1 + rng.Intn(6)
		for k := 0; k < nc; k++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if c := math.Round(rng.Float64()*8) - 4; c != 0 {
					terms = append(terms, Term{j, c})
				}
			}
			if len(terms) == 0 {
				continue
			}
			op := Op(rng.Intn(3))
			p.AddConstraint(terms, op, math.Round(rng.Float64()*12)-4)
		}
		sv := NewSolver()
		sparse, serr := sv.Solve(p)
		dense, derr := (&Solver{Dense: true}).Solve(p)
		if (serr != nil) != (derr != nil) {
			t.Fatalf("trial %d: sparse err %v, dense err %v", trial, serr, derr)
		}
		if sv.DenseFallbacks != 0 {
			t.Fatalf("trial %d: sparse solve fell back to the dense engine", trial)
		}
		if serr != nil {
			continue
		}
		if sparse.Status != dense.Status {
			t.Fatalf("trial %d: sparse %v, dense %v", trial, sparse.Status, dense.Status)
		}
		if sparse.Status != Optimal {
			continue
		}
		if diff := math.Abs(sparse.Obj - dense.Obj); diff > 1e-6*(1+math.Abs(dense.Obj)) {
			t.Fatalf("trial %d: sparse obj %.9g, dense obj %.9g", trial, sparse.Obj, dense.Obj)
		}
		if r := p.Residual(sparse.X); r > 1e-6 {
			t.Fatalf("trial %d: sparse residual %g", trial, r)
		}
	}
}

// TestSparseWarmChainMatchesDense drives the sparse engine through SEM's
// shrink/double warm chain and checks every link's objective against a
// dense cold solve of the identical problem — the cross-engine version of
// TestWarmShrinkAndDouble.
func TestSparseWarmChainMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const m, n = 8, 32
	for trial := 0; trial < 5; trial++ {
		ell := randomRates(rng, m, n)
		jobs := make([]int, n)
		for j := range jobs {
			jobs[j] = j
		}
		L := 0.5
		s := NewSolver()
		prev, err := s.Solve(buildLP1Shaped(ell, jobs, L))
		if err != nil {
			t.Fatal(err)
		}
		prevJobs := jobs
		for round := 2; round <= 4 && len(prevJobs) > 2; round++ {
			var surv []int
			for _, j := range prevJobs {
				if rng.Float64() < 0.4 {
					surv = append(surv, j)
				}
			}
			if len(surv) == 0 {
				surv = prevJobs[:1]
			}
			L *= 2
			p := buildLP1Shaped(ell, surv, L)
			posOf := make(map[int]int, len(prevJobs))
			for pos, j := range prevJobs {
				posOf[j] = pos
			}
			newPos := make(map[int]int, len(surv))
			for pos, j := range surv {
				newPos[j] = pos
			}
			prevK, k := len(prevJobs), len(surv)
			hint := make([]int, k+m)
			for r := range hint {
				var prevRow int
				if r < k {
					prevRow = posOf[surv[r]]
				} else {
					prevRow = prevK + (r - k)
				}
				hint[r] = remapBasisEntry(prev.Basis[prevRow], prevK, k, m, prevJobs, newPos)
			}
			warm, err := s.SolveWarm(p, hint)
			if err != nil {
				t.Fatal(err)
			}
			dense, err := (&Solver{Dense: true}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != Optimal || dense.Status != Optimal {
				t.Fatalf("trial %d round %d: warm %v dense %v", trial, round, warm.Status, dense.Status)
			}
			if diff := math.Abs(warm.Obj - dense.Obj); diff > 1e-6*(1+math.Abs(dense.Obj)) {
				t.Fatalf("trial %d round %d: sparse warm obj %.9g, dense cold obj %.9g",
					trial, round, warm.Obj, dense.Obj)
			}
			prev, prevJobs = warm, surv
		}
	}
}

// TestSparseDegenerateFamilyLarge pins the degenerate specialist family at
// a size where candidate pricing, eta updates, and refactorization all
// engage: massively tied rates produce degenerate bases, and the engines
// must still agree.
func TestSparseDegenerateFamilyLarge(t *testing.T) {
	spec := workload.Spec{Family: "specialist-degen", M: 16, N: 64, Seed: 5, Groups: 4}
	p := lp1FromInstance(t, spec, 0.5)
	sv := NewSolver()
	sparse, err := sv.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sv.DenseFallbacks != 0 {
		t.Fatal("sparse solve fell back to the dense engine")
	}
	dense, err := (&Solver{Dense: true}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Status != Optimal || dense.Status != Optimal {
		t.Fatalf("sparse %v, dense %v", sparse.Status, dense.Status)
	}
	if diff := math.Abs(sparse.Obj - dense.Obj); diff > 1e-6*(1+math.Abs(dense.Obj)) {
		t.Fatalf("sparse t* = %.9g, dense t* = %.9g", sparse.Obj, dense.Obj)
	}
}
