// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A x {≤,=,≥} b,   x ≥ 0.
//
// It is the LP engine behind the paper's relaxations (LP1) and (LP2)
// (Sections 3 and 4): those programs have a few thousand variables and a few
// hundred to a couple thousand constraints, well within reach of a careful
// dense implementation. The solver uses Dantzig pricing with a ratio-test
// tie-break on basis index, and falls back to Bland's rule when it detects
// stalling, which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // Σ a_i x_i ≤ b
	GE           // Σ a_i x_i ≥ b
	EQ           // Σ a_i x_i = b
)

// String returns the relation symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int     // variable index
	Coef float64 // coefficient
}

// Constraint is one sparse row a·x {≤,=,≥} b.
type Constraint struct {
	Terms []Term
	Op    Op
	B     float64
}

// Problem is a linear program over NumVars nonnegative variables.
type Problem struct {
	NumVars int
	C       []float64 // minimization objective, length NumVars
	Cons    []Constraint
}

// NewProblem returns an empty minimization problem on n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, C: make([]float64, n)}
}

// AddConstraint appends a sparse constraint row.
func (p *Problem) AddConstraint(terms []Term, op Op, b float64) {
	p.Cons = append(p.Cons, Constraint{Terms: terms, Op: op, B: b})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // values of the original variables (Optimal only)
	Obj    float64   // objective value (Optimal only)
	Iters  int       // simplex pivots across both phases (diagnostics)
}

// ErrIterationLimit is returned if the simplex exceeds its iteration budget,
// which indicates a numerical pathology rather than a legitimate answer.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

const (
	eps      = 1e-9 // pivot / feasibility tolerance
	costEps  = 1e-9 // reduced-cost optimality tolerance
	cleanEps = 1e-9 // solution cleanup threshold
)

// tableau is the dense simplex state.
type tableau struct {
	rows  int
	cols  int // total columns excluding RHS
	a     [][]float64
	b     []float64
	basis []int
	// cost row (reduced costs) and its RHS (negated objective value)
	cost    []float64
	costRHS float64
	banned  []bool // columns barred from entering (artificials in phase 2)
	iters   int    // pivots performed
}

// Solve solves the problem. The error is non-nil only for internal failures
// (iteration limit); infeasible/unbounded outcomes are reported via Status.
func Solve(p *Problem) (*Solution, error) {
	if len(p.C) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.C), p.NumVars)
	}
	m := len(p.Cons)
	n := p.NumVars

	// Count auxiliary columns. Rows are normalized to b ≥ 0 first, which
	// flips LE<->GE, so count after normalization.
	type rowInfo struct {
		terms []Term
		op    Op
		b     float64
	}
	rows := make([]rowInfo, m)
	slacks, artificials := 0, 0
	for i, c := range p.Cons {
		ri := rowInfo{terms: c.Terms, op: c.Op, b: c.B}
		if ri.b < 0 {
			// Negate the row.
			neg := make([]Term, len(ri.terms))
			for k, t := range ri.terms {
				neg[k] = Term{t.Var, -t.Coef}
			}
			ri.terms = neg
			ri.b = -ri.b
			switch ri.op {
			case LE:
				ri.op = GE
			case GE:
				ri.op = LE
			}
		}
		switch ri.op {
		case LE:
			slacks++
		case GE:
			slacks++ // surplus
			artificials++
		case EQ:
			artificials++
		}
		rows[i] = ri
	}

	cols := n + slacks + artificials
	t := &tableau{
		rows:   m,
		cols:   cols,
		a:      make([][]float64, m),
		b:      make([]float64, m),
		basis:  make([]int, m),
		cost:   make([]float64, cols),
		banned: make([]bool, cols),
	}
	for i := range t.a {
		t.a[i] = make([]float64, cols)
	}
	artStart := n + slacks
	slackIdx, artIdx := n, artStart
	for i, ri := range rows {
		row := t.a[i]
		for _, term := range ri.terms {
			if term.Var < 0 || term.Var >= n {
				return nil, fmt.Errorf("lp: constraint %d references variable %d (have %d)", i, term.Var, n)
			}
			row[term.Var] += term.Coef
		}
		t.b[i] = ri.b
		switch ri.op {
		case LE:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if artificials > 0 {
		for j := artStart; j < cols; j++ {
			t.cost[j] = 1
		}
		t.costRHS = 0
		for i := range t.a {
			if t.basis[i] >= artStart {
				subRow(t.cost, t.a[i], 1)
				t.costRHS -= t.b[i]
			}
		}
		if err := t.iterate(); err != nil {
			return nil, err
		}
		if -t.costRHS > 1e-7*(1+math.Abs(t.costRHS)) && -t.costRHS > 1e-7 {
			return &Solution{Status: Infeasible, Iters: t.iters}, nil
		}
		// Drive any remaining artificials out of the basis.
		for i := 0; i < t.rows; i++ {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > 1e-7 {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the artificial stays basic at value 0.
				t.b[i] = 0
			}
		}
		for j := artStart; j < cols; j++ {
			t.banned[j] = true
		}
	}

	// Phase 2: original objective.
	for j := range t.cost {
		t.cost[j] = 0
	}
	copy(t.cost, p.C)
	t.costRHS = 0
	for i := range t.a {
		cb := 0.0
		if t.basis[i] < n {
			cb = p.C[t.basis[i]]
		}
		if cb != 0 {
			subRow(t.cost, t.a[i], cb)
			t.costRHS -= cb * t.b[i]
		}
	}
	switch err := t.iterate(); {
	case err == errUnbounded:
		return &Solution{Status: Unbounded, Iters: t.iters}, nil
	case err != nil:
		return nil, err
	}

	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			v := t.b[i]
			if v < 0 && v > -cleanEps {
				v = 0
			}
			x[bi] = v
		}
	}
	obj := 0.0
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: t.iters}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// pricing rules, escalating with degeneracy.
const (
	priceDantzig = iota // most negative reduced cost
	priceRandom         // uniform among negative columns (stall escape)
	priceBland          // first negative column (cannot cycle)
)

// iterate runs primal simplex pivots until optimality, unboundedness, or
// the iteration budget is exhausted. Dantzig pricing runs while the
// objective improves. Degenerate stalls — endemic to the rank-1 "skill"
// instances, whose ratio tests tie massively — switch to randomized
// pricing, which escapes degenerate vertices in a handful of pivots with
// high probability; if even that stalls, Bland's rule is the guaranteed
// backstop. Any strict improvement resets to Dantzig, so no basis can
// repeat across resets.
func (t *tableau) iterate() error {
	maxIter := 5000 + 60*(t.rows+t.cols)
	mode := priceDantzig
	stall := 0
	rng := rand.New(rand.NewSource(int64(t.rows)*1e6 + int64(t.cols)))
	lastObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		col := t.chooseColumn(mode, rng)
		if col < 0 {
			return nil // optimal
		}
		row := t.chooseRow(col)
		if row < 0 {
			return errUnbounded
		}
		t.pivot(row, col)
		obj := -t.costRHS
		switch {
		case obj < lastObj-1e-12*(1+math.Abs(lastObj)):
			lastObj = obj
			stall = 0
			mode = priceDantzig
		default:
			stall++
			switch {
			case stall > 4*t.rows+1000:
				mode = priceBland
			case stall > t.rows/2+40:
				mode = priceRandom
			}
		}
	}
	return ErrIterationLimit
}

// chooseColumn picks the entering column under the given pricing rule.
// Returns -1 at optimality.
func (t *tableau) chooseColumn(mode int, rng *rand.Rand) int {
	best, bestVal := -1, -costEps
	seen := 0
	for j := 0; j < t.cols; j++ {
		if t.banned[j] {
			continue
		}
		c := t.cost[j]
		if c >= -costEps {
			continue
		}
		switch mode {
		case priceBland:
			return j
		case priceRandom:
			// Reservoir-sample one negative column uniformly.
			seen++
			if rng.Intn(seen) == 0 {
				best = j
			}
		default:
			if c < bestVal {
				best, bestVal = j, c
			}
		}
	}
	return best
}

// chooseRow performs the ratio test for entering column c, breaking ties by
// the smallest basis index (a cheap anti-cycling heuristic). Returns -1 if
// the column is unbounded.
func (t *tableau) chooseRow(c int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		aic := t.a[i][c]
		if aic <= eps {
			continue
		}
		r := t.b[i] / aic
		if r < bestRatio-eps || (r < bestRatio+eps && (best < 0 || t.basis[i] < t.basis[best])) {
			best, bestRatio = i, r
		}
	}
	return best
}

// pivot makes column c basic in row r.
func (t *tableau) pivot(r, c int) {
	pr := t.a[r]
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // kill roundoff
	t.b[r] *= inv
	for i := 0; i < t.rows; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		subRow(t.a[i], pr, f)
		t.a[i][c] = 0
		t.b[i] -= f * t.b[r]
		if t.b[i] < 0 && t.b[i] > -cleanEps {
			t.b[i] = 0
		}
	}
	if f := t.cost[c]; f != 0 {
		subRow(t.cost, pr, f)
		t.cost[c] = 0
		t.costRHS -= f * t.b[r]
	}
	t.basis[r] = c
	t.iters++
}

// subRow computes dst -= f*src over the full row. It is the hot loop of the
// solver; keeping it straight-line lets the compiler eliminate bounds checks.
func subRow(dst, src []float64, f float64) {
	_ = dst[len(src)-1]
	for j := range src {
		dst[j] -= f * src[j]
	}
}

// Residual reports the worst constraint violation of x (positive means
// infeasible by that amount) and is used by tests and defensive checks.
func (p *Problem) Residual(x []float64) float64 {
	worst := 0.0
	for _, c := range p.Cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		var v float64
		switch c.Op {
		case LE:
			v = lhs - c.B
		case GE:
			v = c.B - lhs
		case EQ:
			v = math.Abs(lhs - c.B)
		}
		if v > worst {
			worst = v
		}
	}
	for _, xi := range x {
		if -xi > worst {
			worst = -xi
		}
	}
	return worst
}
