// Package lp implements the LP engine behind the paper's relaxations (LP1)
// and (LP2) (Sections 3 and 4): minimization problems
//
//	minimize    c·x
//	subject to  A x {≤,=,≥} b,   x ≥ 0.
//
// Two interchangeable simplex engines share one Solver workspace and one
// basis encoding:
//
//   - The default engine (sparse.go) is a sparse revised simplex. The
//     constraint matrix is stored once per solve in compressed column form,
//     the basis is held as a sparse LU factorization with Markowitz-style
//     threshold pivoting (lu.go), pivots are applied as product-form eta
//     updates with periodic refactorization, and entering columns are priced
//     with a candidate-list partial pricing rule (pricing.go). LP1/LP2
//     matrices are ~95% structural zeros — each x_{i,pos} appears in exactly
//     one cover row and one machine row — so a pivot costs O(nnz) instead of
//     the dense tableau's O(rows·cols).
//
//   - Solver{Dense: true} selects the dense two-phase tableau engine
//     (dense.go), the reference implementation the sparse engine is
//     differentially tested against (sparse t* must equal dense t* to 1e-6
//     on every workload family). The sparse engine also falls back to it on
//     numerical bailouts, so callers never observe a sparse-only failure
//     mode.
//
// # Solver workspaces
//
// All simplex state lives in a reusable Solver: factors, eta files, pricing
// lists, and the dense tableau (when used) are allocated once and grown
// monotonically, so a Monte Carlo worker that re-solves LPs all trial long
// performs no steady-state solver allocations. The package-level Solve is a
// convenience wrapper over a throwaway Solver; hot paths should hold one
// Solver per goroutine (a Solver is not safe for concurrent use) and call
// its Solve/SolveWarm methods.
//
// # Warm starts
//
// Solution records the optimal basis in a problem-independent encoding
// (Basis). SolveWarm accepts a per-row basis hint in the same encoding and
// tries to skip phase 1 entirely: it installs the hinted basis (sparse: by
// LU-factorizing the hinted columns, patching rows the hint cannot claim
// with their own slack or artificial; dense: by Gaussian-elimination
// pivoting), repairs any lost primal feasibility with dual simplex steps
// (the textbook response to a changed right-hand side), and then runs
// ordinary phase-2 pivots to optimality. Any numerical trouble — a hinted
// column that cannot be pivoted in, an artificial stuck basic at a positive
// value, loss of both primal and dual feasibility — abandons the warm path
// and falls back to a cold solve, so SolveWarm is exactly as robust as
// Solve and differs only in speed. This is the engine behind the
// shrinking-subset/doubling-target re-solves of SUU-I-SEM and the
// cross-block LP2 chain of SUU-T (see internal/rounding).
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // Σ a_i x_i ≤ b
	GE           // Σ a_i x_i ≥ b
	EQ           // Σ a_i x_i = b
)

// String returns the relation symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int     // variable index
	Coef float64 // coefficient
}

// Constraint is one sparse row a·x {≤,=,≥} b.
type Constraint struct {
	Terms []Term
	Op    Op
	B     float64
}

// Problem is a linear program over NumVars nonnegative variables.
type Problem struct {
	NumVars int
	C       []float64 // minimization objective, length NumVars
	Cons    []Constraint
}

// NewProblem returns an empty minimization problem on n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, C: make([]float64, n)}
}

// AddConstraint appends a sparse constraint row.
func (p *Problem) AddConstraint(terms []Term, op Op, b float64) {
	p.Cons = append(p.Cons, Constraint{Terms: terms, Op: op, B: b})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Basis encoding (Solution.Basis and SolveWarm hints): entry i describes
// the basic column of constraint row i. A value v ≥ 0 names original
// variable v; a value v < 0 (other than NoHint) names the slack or surplus
// column owned by row −1−v. The encoding carries across problems with the
// same row meaning, which is what makes a previous solve's basis usable as
// a hint for a perturbed re-solve.
const NoHint = math.MinInt

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // values of the original variables (Optimal only)
	Obj    float64   // objective value (Optimal only)
	Iters  int       // simplex pivots across both phases (diagnostics)
	// Basis is the optimal basis, one entry per constraint row, in the
	// encoding documented at NoHint (Optimal only). Feed it back to
	// SolveWarm to warm-start a related re-solve.
	Basis []int
	// Warm reports that the warm-start path produced this solution
	// without falling back to a cold solve.
	Warm bool
}

// ErrIterationLimit is returned if the simplex exceeds its iteration budget,
// which indicates a numerical pathology rather than a legitimate answer.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// ErrUnsolvable marks a problem no engine can finish: the sparse simplex
// bailed out numerically and the problem is over the dense fallback's size
// cap, so retrying would only repeat the failure. Callers that serve LP
// results should surface it as a semantic rejection of the instance (the
// planning service maps it to HTTP 422), not as an internal server error —
// the request was understood, and this instance is beyond the engine.
var ErrUnsolvable = errors.New("lp: problem unsolvable within engine limits")

// errNumeric is an internal sentinel for sparse-engine numerical bailouts
// (a basis refactorization that cannot find acceptable pivots); Solve
// responds by re-solving on the dense engine.
var errNumeric = errors.New("lp: sparse basis factorization failed")

const (
	eps      = 1e-9 // pivot / feasibility tolerance
	costEps  = 1e-9 // reduced-cost optimality tolerance
	cleanEps = 1e-9 // solution cleanup threshold
	pivotTol = 1e-7 // minimum magnitude for install / drive-out pivots
)

// Solver is a reusable simplex workspace. The default engine is the sparse
// revised simplex (compressed columns + LU-factorized basis + candidate
// pricing); Dense selects the dense tableau engine instead. All state is
// allocated once and grown monotonically, so repeated solves of
// similar-size problems allocate nothing beyond the returned Solution. A
// Solver is not safe for concurrent use; hot paths hold one per goroutine
// (see rounding.Workspace).
type Solver struct {
	// Dense routes Solve/SolveWarm through the dense two-phase tableau
	// engine instead of the sparse revised simplex. The dense engine is
	// the differential-testing reference and the automatic fallback for
	// sparse numerical bailouts; production callers leave this false.
	Dense bool

	// ---- dense tableau engine state (dense.go) ----
	rows, cols int
	n          int // original variable count of the current problem
	artStart   int // first artificial column
	a          []float64
	b          []float64
	basis      []int
	cost       []float64
	costRHS    float64
	banned     []bool
	iters      int
	prng       rng.SplitMix64

	auxOf  []int // per column: -1 for original vars, else owning row
	rowAux []int // per row: its slack/surplus column, -1 for EQ rows
	rowArt []int // per row: its artificial column, -1 if none

	// warm-install scratch
	inBasis []bool
	wantCol []bool
	claimed []bool
	desired []int

	negArena []Term // normalization scratch for b < 0 rows
	rowsBuf  []rowInfo

	// ---- sparse revised simplex engine state (sparse.go) ----
	sp spState

	// Diagnostics: solve counts by path, readable between solves.
	ColdSolves    int // cold two-phase solves (including warm fallbacks)
	WarmSolves    int // solves completed on the warm path
	WarmFallbacks int // warm attempts abandoned to a cold solve
	// DenseFallbacks counts sparse solves abandoned to the dense engine
	// after a numerical bailout (0 in practice).
	DenseFallbacks int
}

type rowInfo struct {
	terms []Term
	op    Op
	b     float64
}

// NewSolver returns an empty workspace. The zero value is also ready to use.
func NewSolver() *Solver { return &Solver{} }

// Solve solves the problem from a cold (all-slack) start. The error is
// non-nil only for internal failures (iteration limit) and malformed
// problems; infeasible/unbounded outcomes are reported via Status.
func (s *Solver) Solve(p *Problem) (*Solution, error) {
	if s.Dense {
		return s.solveDense(p)
	}
	sol, err := s.solveSparse(p)
	if err == errNumeric || err == ErrIterationLimit {
		// Numerical bailout: the dense tableau engine is slower but has
		// different roundoff behavior; let it produce the answer — but
		// only at sizes where a dense tableau is sane. Past the cap
		// (n=256-scale LP1 is ~5M entries, a 44 MB tableau retained by
		// every pooled workspace and a minutes-long solve), surface the
		// error instead: a visible failure beats a silent stall.
		if s.denseFallbackFits(p) {
			s.DenseFallbacks++
			return s.solveDense(p)
		}
		return nil, unsolvableError(p, err)
	}
	return sol, err
}

// unsolvableError wraps a size-capped sparse bailout so callers can match
// both the typed ErrUnsolvable and the underlying engine failure.
func unsolvableError(p *Problem, cause error) error {
	return fmt.Errorf("%w: sparse engine failed and problem too large for the dense fallback (%d rows): %w", ErrUnsolvable, len(p.Cons), cause)
}

// denseFallbackFits caps the automatic sparse→dense bailout: the dense
// tableau is rows × (vars + one aux column per row bound), and past ~4M
// entries (32 MB) a fallback would quietly turn an interactive solve into
// a minutes-long, memory-hoarding one. Every pre-sparse-era problem size
// fits comfortably.
func (s *Solver) denseFallbackFits(p *Problem) bool {
	rows := len(p.Cons)
	cols := p.NumVars + 2*rows
	const maxEntries = 4 << 20
	return rows == 0 || cols <= maxEntries/rows
}

// SolveWarm solves the problem starting from the hinted basis (one entry
// per constraint row, Basis encoding; NoHint entries default to the row's
// own slack). It skips phase 1 when the hint installs cleanly, repairing
// primal feasibility with dual simplex pivots, and falls back to a cold
// Solve on any trouble — the result is always exactly as trustworthy as
// Solve's, warm starting only changes the pivot count.
func (s *Solver) SolveWarm(p *Problem, hint []int) (*Solution, error) {
	if len(hint) != len(p.Cons) {
		return s.Solve(p)
	}
	var (
		sol *Solution
		ok  bool
		err error
	)
	if s.Dense {
		sol, ok, err = s.tryWarm(p, hint)
	} else {
		sol, ok, err = s.tryWarmSparse(p, hint)
	}
	if err != nil {
		return nil, err
	}
	if ok {
		s.WarmSolves++
		sol.Warm = true
		return sol, nil
	}
	s.WarmFallbacks++
	return s.Solve(p)
}

// Solve solves the problem on a throwaway Solver. Callers in hot loops
// should hold a Solver and use its methods instead.
func Solve(p *Problem) (*Solution, error) {
	return NewSolver().Solve(p)
}

// normalize rewrites the constraints with b ≥ 0 (negating a row flips
// LE<->GE) into the solver's reusable row buffer and counts the auxiliary
// columns both engines append: one slack/surplus per inequality, one
// artificial per GE/EQ row.
func (s *Solver) normalize(p *Problem) (rows []rowInfo, slacks, artificials int, err error) {
	if len(p.C) != p.NumVars {
		return nil, 0, 0, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.C), p.NumVars)
	}
	m := len(p.Cons)
	rows = growRowInfos(s.rowsBuf, m)
	neg := s.negArena[:0]
	for i, c := range p.Cons {
		ri := rowInfo{terms: c.Terms, op: c.Op, b: c.B}
		if ri.b < 0 {
			start := len(neg)
			for _, t := range ri.terms {
				neg = append(neg, Term{t.Var, -t.Coef})
			}
			ri.terms = neg[start:len(neg):len(neg)]
			ri.b = -ri.b
			switch ri.op {
			case LE:
				ri.op = GE
			case GE:
				ri.op = LE
			}
		}
		switch ri.op {
		case LE:
			slacks++
		case GE:
			slacks++ // surplus
			artificials++
		case EQ:
			artificials++
		}
		rows[i] = ri
	}
	s.rowsBuf, s.negArena = rows, neg
	return rows, slacks, artificials, nil
}

// growFloats returns buf resized to n, zeroed, reusing its backing array
// when capacity allows (the zeroing loop compiles to memclr).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growInt32s(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

func growRowInfos(buf []rowInfo, n int) []rowInfo {
	if cap(buf) < n {
		return make([]rowInfo, n)
	}
	return buf[:n]
}

// Residual reports the worst constraint violation of x (positive means
// infeasible by that amount) and is used by tests and defensive checks.
func (p *Problem) Residual(x []float64) float64 {
	worst := 0.0
	for _, c := range p.Cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		var v float64
		switch c.Op {
		case LE:
			v = lhs - c.B
		case GE:
			v = c.B - lhs
		case EQ:
			v = math.Abs(lhs - c.B)
		}
		if v > worst {
			worst = v
		}
	}
	for _, xi := range x {
		if -xi > worst {
			worst = -xi
		}
	}
	return worst
}
