// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A x {≤,=,≥} b,   x ≥ 0.
//
// It is the LP engine behind the paper's relaxations (LP1) and (LP2)
// (Sections 3 and 4): those programs have a few thousand variables and a few
// hundred to a couple thousand constraints, well within reach of a careful
// dense implementation. The solver uses Dantzig pricing with a ratio-test
// tie-break on basis index, and falls back to Bland's rule when it detects
// stalling, which guarantees termination.
//
// # Solver workspaces
//
// All simplex state lives in a reusable Solver: the tableau is one flat
// row-major backing array, allocated once and grown monotonically, so a
// Monte Carlo worker that re-solves LPs all trial long performs no
// steady-state tableau allocations. The package-level Solve is a
// convenience wrapper over a throwaway Solver; hot paths should hold one
// Solver per goroutine (a Solver is not safe for concurrent use) and call
// its Solve/SolveWarm methods.
//
// # Warm starts
//
// Solution records the optimal basis in a problem-independent encoding
// (Basis). SolveWarm accepts a per-row basis hint in the same encoding and
// tries to skip phase 1 entirely: it installs the hinted basis by direct
// pivoting, repairs any lost primal feasibility with dual simplex steps
// (the textbook response to a changed right-hand side), and then runs
// ordinary phase-2 pivots to optimality. Any numerical trouble — a hinted
// column that cannot be pivoted in, an artificial stuck basic at a positive
// value, loss of both primal and dual feasibility — abandons the warm path
// and falls back to a cold two-phase solve, so SolveWarm is exactly as
// robust as Solve and differs only in speed. This is the engine behind the
// shrinking-subset/doubling-target re-solves of SUU-I-SEM (see
// internal/rounding), where round k+1's LP1 is a small perturbation of
// round k's and the previous basis is almost always a few pivots from
// optimal.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // Σ a_i x_i ≤ b
	GE           // Σ a_i x_i ≥ b
	EQ           // Σ a_i x_i = b
)

// String returns the relation symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int     // variable index
	Coef float64 // coefficient
}

// Constraint is one sparse row a·x {≤,=,≥} b.
type Constraint struct {
	Terms []Term
	Op    Op
	B     float64
}

// Problem is a linear program over NumVars nonnegative variables.
type Problem struct {
	NumVars int
	C       []float64 // minimization objective, length NumVars
	Cons    []Constraint
}

// NewProblem returns an empty minimization problem on n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, C: make([]float64, n)}
}

// AddConstraint appends a sparse constraint row.
func (p *Problem) AddConstraint(terms []Term, op Op, b float64) {
	p.Cons = append(p.Cons, Constraint{Terms: terms, Op: op, B: b})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Basis encoding (Solution.Basis and SolveWarm hints): entry i describes
// the basic column of constraint row i. A value v ≥ 0 names original
// variable v; a value v < 0 (other than NoHint) names the slack or surplus
// column owned by row −1−v. The encoding carries across problems with the
// same row meaning, which is what makes a previous solve's basis usable as
// a hint for a perturbed re-solve.
const NoHint = math.MinInt

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // values of the original variables (Optimal only)
	Obj    float64   // objective value (Optimal only)
	Iters  int       // simplex pivots across both phases (diagnostics)
	// Basis is the optimal basis, one entry per constraint row, in the
	// encoding documented at NoHint (Optimal only). Feed it back to
	// SolveWarm to warm-start a related re-solve.
	Basis []int
	// Warm reports that the warm-start path produced this solution
	// without falling back to a cold solve.
	Warm bool
}

// ErrIterationLimit is returned if the simplex exceeds its iteration budget,
// which indicates a numerical pathology rather than a legitimate answer.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

const (
	eps      = 1e-9 // pivot / feasibility tolerance
	costEps  = 1e-9 // reduced-cost optimality tolerance
	cleanEps = 1e-9 // solution cleanup threshold
	pivotTol = 1e-7 // minimum magnitude for install / drive-out pivots
)

// Solver is a reusable simplex workspace: the dense tableau lives in one
// flat row-major array that is allocated once and grown monotonically, so
// repeated solves of similar-size problems allocate nothing beyond the
// returned Solution. A Solver is not safe for concurrent use; hot paths
// hold one per goroutine (see rounding.Workspace).
type Solver struct {
	rows, cols int
	n          int // original variable count of the current problem
	artStart   int // first artificial column
	a          []float64
	b          []float64
	basis      []int
	cost       []float64
	costRHS    float64
	banned     []bool
	iters      int
	prng       rng.SplitMix64

	auxOf  []int // per column: -1 for original vars, else owning row
	rowAux []int // per row: its slack/surplus column, -1 for EQ rows
	rowArt []int // per row: its artificial column, -1 if none

	// warm-install scratch
	inBasis []bool
	wantCol []bool
	claimed []bool
	desired []int

	negArena []Term // normalization scratch for b < 0 rows
	rowsBuf  []rowInfo

	// Diagnostics: solve counts by path, readable between solves.
	ColdSolves    int // cold two-phase solves (including warm fallbacks)
	WarmSolves    int // solves completed on the warm path
	WarmFallbacks int // warm attempts abandoned to a cold solve
}

type rowInfo struct {
	terms []Term
	op    Op
	b     float64
}

// NewSolver returns an empty workspace. The zero value is also ready to use.
func NewSolver() *Solver { return &Solver{} }

// Solve solves the problem from a cold (all-slack) start. The error is
// non-nil only for internal failures (iteration limit) and malformed
// problems; infeasible/unbounded outcomes are reported via Status.
func (s *Solver) Solve(p *Problem) (*Solution, error) {
	if err := s.setup(p); err != nil {
		return nil, err
	}
	s.ColdSolves++
	if infeasible, err := s.phase1(); err != nil {
		return nil, err
	} else if infeasible {
		return &Solution{Status: Infeasible, Iters: s.iters}, nil
	}
	s.phase2Prep(p)
	switch err := s.iterate(); {
	case err == errUnbounded:
		return &Solution{Status: Unbounded, Iters: s.iters}, nil
	case err != nil:
		return nil, err
	}
	return s.extract(p), nil
}

// SolveWarm solves the problem starting from the hinted basis (one entry
// per constraint row, Basis encoding; NoHint entries default to the row's
// own slack). It skips phase 1 when the hint installs cleanly, repairing
// primal feasibility with dual simplex pivots, and falls back to a cold
// Solve on any trouble — the result is always exactly as trustworthy as
// Solve's, warm starting only changes the pivot count.
func (s *Solver) SolveWarm(p *Problem, hint []int) (*Solution, error) {
	if len(hint) != len(p.Cons) {
		return s.Solve(p)
	}
	sol, ok, err := s.tryWarm(p, hint)
	if err != nil {
		return nil, err
	}
	if ok {
		s.WarmSolves++
		sol.Warm = true
		return sol, nil
	}
	s.WarmFallbacks++
	return s.Solve(p)
}

// Solve solves the problem on a throwaway Solver. Callers in hot loops
// should hold a Solver and use its methods instead.
func Solve(p *Problem) (*Solution, error) {
	return NewSolver().Solve(p)
}

// setup normalizes the constraints and (re)builds the initial all-slack
// tableau in the workspace's flat backing arrays.
func (s *Solver) setup(p *Problem) error {
	if len(p.C) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.C), p.NumVars)
	}
	m := len(p.Cons)
	n := p.NumVars

	// Normalize rows to b ≥ 0 (negating flips LE<->GE), then count
	// auxiliary columns.
	rows := growRowInfos(s.rowsBuf, m)
	neg := s.negArena[:0]
	slacks, artificials := 0, 0
	for i, c := range p.Cons {
		ri := rowInfo{terms: c.Terms, op: c.Op, b: c.B}
		if ri.b < 0 {
			start := len(neg)
			for _, t := range ri.terms {
				neg = append(neg, Term{t.Var, -t.Coef})
			}
			ri.terms = neg[start:len(neg):len(neg)]
			ri.b = -ri.b
			switch ri.op {
			case LE:
				ri.op = GE
			case GE:
				ri.op = LE
			}
		}
		switch ri.op {
		case LE:
			slacks++
		case GE:
			slacks++ // surplus
			artificials++
		case EQ:
			artificials++
		}
		rows[i] = ri
	}
	s.rowsBuf, s.negArena = rows, neg

	cols := n + slacks + artificials
	s.rows, s.cols, s.n = m, cols, n
	s.artStart = n + slacks
	s.a = growFloats(s.a, m*cols)
	s.b = growFloats(s.b, m)
	s.cost = growFloats(s.cost, cols)
	s.basis = growInts(s.basis, m)
	s.banned = growBools(s.banned, cols)
	s.auxOf = growInts(s.auxOf, cols)
	s.rowAux = growInts(s.rowAux, m)
	s.rowArt = growInts(s.rowArt, m)
	for j := 0; j < n; j++ {
		s.auxOf[j] = -1
	}
	s.costRHS = 0
	s.iters = 0
	// Deterministic per-shape stream for the randomized anti-stall pricing;
	// SplitMix64 reseeds by a single word write, unlike the ~4.9 KB
	// rand.NewSource this replaced.
	s.prng.Seed(int64(m)*1e6 + int64(cols))

	slackIdx, artIdx := n, s.artStart
	for i, ri := range rows {
		row := s.row(i)
		for _, term := range ri.terms {
			if term.Var < 0 || term.Var >= n {
				return fmt.Errorf("lp: constraint %d references variable %d (have %d)", i, term.Var, n)
			}
			row[term.Var] += term.Coef
		}
		s.b[i] = ri.b
		s.rowAux[i], s.rowArt[i] = -1, -1
		switch ri.op {
		case LE:
			row[slackIdx] = 1
			s.auxOf[slackIdx] = i
			s.rowAux[i] = slackIdx
			s.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			s.auxOf[slackIdx] = i
			s.rowAux[i] = slackIdx
			slackIdx++
			row[artIdx] = 1
			s.auxOf[artIdx] = i
			s.rowArt[i] = artIdx
			s.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			s.auxOf[artIdx] = i
			s.rowArt[i] = artIdx
			s.basis[i] = artIdx
			artIdx++
		}
	}
	return nil
}

// row returns the tableau row as a slice of the flat backing array. The
// three-index form pins cap so subRow's bounds-check elimination holds.
func (s *Solver) row(i int) []float64 {
	off := i * s.cols
	return s.a[off : off+s.cols : off+s.cols]
}

// phase1 minimizes the sum of artificials and drives them out of the
// basis. It reports infeasibility; on success artificial columns are
// banned and the tableau holds a basic feasible solution.
func (s *Solver) phase1() (infeasible bool, err error) {
	if s.artStart == s.cols {
		return false, nil
	}
	for j := s.artStart; j < s.cols; j++ {
		s.cost[j] = 1
	}
	s.costRHS = 0
	for i := 0; i < s.rows; i++ {
		if s.basis[i] >= s.artStart {
			subRow(s.cost, s.row(i), 1)
			s.costRHS -= s.b[i]
		}
	}
	if err := s.iterate(); err != nil {
		return false, err
	}
	if -s.costRHS > 1e-7*(1+math.Abs(s.costRHS)) && -s.costRHS > 1e-7 {
		return true, nil
	}
	// Drive any remaining artificials out of the basis.
	for i := 0; i < s.rows; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		pivoted := false
		row := s.row(i)
		for j := 0; j < s.artStart; j++ {
			if math.Abs(row[j]) > pivotTol {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: the artificial stays basic at value 0.
			s.b[i] = 0
		}
	}
	for j := s.artStart; j < s.cols; j++ {
		s.banned[j] = true
	}
	return false, nil
}

// phase2Prep installs the original objective's reduced costs for the
// current basis.
func (s *Solver) phase2Prep(p *Problem) {
	for j := range s.cost {
		s.cost[j] = 0
	}
	copy(s.cost, p.C)
	s.costRHS = 0
	for i := 0; i < s.rows; i++ {
		cb := 0.0
		if s.basis[i] < s.n {
			cb = p.C[s.basis[i]]
		}
		if cb != 0 {
			subRow(s.cost, s.row(i), cb)
			s.costRHS -= cb * s.b[i]
		}
	}
}

// extract reads the optimal solution and basis out of the tableau.
func (s *Solver) extract(p *Problem) *Solution {
	x := make([]float64, s.n)
	for i, bi := range s.basis {
		if bi < s.n {
			v := s.b[i]
			if v < 0 && v > -cleanEps {
				v = 0
			}
			x[bi] = v
		}
	}
	obj := 0.0
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	basis := make([]int, s.rows)
	for i, bi := range s.basis {
		if bi < s.n {
			basis[i] = bi
		} else {
			basis[i] = -1 - s.auxOf[bi]
		}
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: s.iters, Basis: basis}
}

// tryWarm attempts the warm-start path: install the hinted basis, repair
// primal feasibility with dual pivots, finish with primal phase 2. A false
// ok means the caller should fall back to a cold solve.
func (s *Solver) tryWarm(p *Problem, hint []int) (sol *Solution, ok bool, err error) {
	if err := s.setup(p); err != nil {
		return nil, false, err
	}
	s.installBasis(hint)
	// Artificials may never (re-)enter; a hinted basis replaces phase 1.
	for j := s.artStart; j < s.cols; j++ {
		s.banned[j] = true
	}
	// An artificial stuck basic at a meaningfully positive value means the
	// install did not reach a feasible basis of the original rows.
	for i := 0; i < s.rows; i++ {
		if s.basis[i] >= s.artStart && s.b[i] > pivotTol {
			return nil, false, nil
		}
	}
	s.phase2Prep(p)
	if !s.dualRepair() {
		return nil, false, nil
	}
	if err := s.iterate(); err != nil {
		// Unbounded or stalled on the warm path: let the cold solve decide.
		return nil, false, nil
	}
	// Re-check stuck artificials at the final basis: repair and phase-2
	// pivots can have grown a basic artificial's b since the pre-repair
	// check, and a positive artificial means the point violates its
	// original row even though the reduced costs look optimal.
	for i := 0; i < s.rows; i++ {
		if s.basis[i] >= s.artStart && s.b[i] > pivotTol {
			return nil, false, nil
		}
	}
	return s.extract(p), true, nil
}

// installBasis pivots the hinted columns into the basis. The hint names a
// column per row, but a basis is really a column *set*: in the previous
// final tableau a column can be basic in a row where the fresh tableau has
// a zero coefficient, so row-by-row pivoting breaks down. Instead this is
// Gaussian elimination with row partial pivoting — for each desired column,
// pivot in the unclaimed row where its current coefficient is largest —
// which cannot break down when the desired set is a genuine basis of the
// new matrix. Columns that cannot be pivoted in (departed-structure
// leftovers, near-singular coefficients) are skipped; their rows keep the
// initial slack/artificial and the caller's feasibility checks decide.
func (s *Solver) installBasis(hint []int) {
	inB := growBools(s.inBasis, s.cols)
	s.inBasis = inB
	for _, bi := range s.basis {
		inB[bi] = true
	}
	want := growBools(s.wantCol, s.cols)
	s.wantCol = want
	des := growInts(s.desired, s.rows)[:0]
	s.desired = des
	for _, h := range hint {
		c := -1
		switch {
		case h >= 0 && h < s.n:
			c = h
		case h != NoHint && h < 0:
			if rr := -1 - h; rr >= 0 && rr < s.rows {
				c = s.rowAux[rr]
			}
		}
		if c >= 0 && !want[c] {
			want[c] = true
			des = append(des, c)
		}
	}
	s.desired = des
	// Rows whose initial basic column is already desired are settled.
	claimed := growBools(s.claimed, s.rows)
	s.claimed = claimed
	for r := 0; r < s.rows; r++ {
		if want[s.basis[r]] {
			claimed[r] = true
		}
	}
	for _, c := range des {
		if inB[c] {
			continue
		}
		best, bestV := -1, pivotTol
		for r := 0; r < s.rows; r++ {
			if claimed[r] {
				continue
			}
			if v := math.Abs(s.a[r*s.cols+c]); v > bestV {
				best, bestV = r, v
			}
		}
		if best < 0 {
			continue
		}
		inB[s.basis[best]] = false
		s.pivot(best, c)
		inB[c] = true
		claimed[best] = true
	}
	// Rows still holding their artificial — hints lost to departed
	// structure — swap it for the row's own slack/surplus when possible.
	// For a surplus (GE) row this turns a would-be rejection (artificial
	// basic at b > 0) into a plain negative-b row that dualRepair fixes.
	for r := 0; r < s.rows; r++ {
		if s.basis[r] < s.artStart {
			continue
		}
		c := s.rowAux[r]
		if c < 0 || inB[c] {
			continue
		}
		if v := math.Abs(s.a[r*s.cols+c]); v > pivotTol {
			inB[s.basis[r]] = false
			s.pivot(r, c)
			inB[c] = true
		}
	}
}

// dualRepair restores primal feasibility (b ≥ 0) with dual simplex pivots,
// the standard warm-start repair for a changed right-hand side. When the
// installed basis is also dual infeasible (doubling L perturbs the capped
// cover coefficients, so reduced costs drift), the same loop still runs as
// a plain feasibility heuristic — its termination guarantee is then only
// the iteration cap, but any basis it reaches with b ≥ 0 is a legitimate
// phase-2 start, and the subsequent primal iterate restores optimality
// regardless of the pivot path. Returns false when the warm path should be
// abandoned.
func (s *Solver) dualRepair() bool {
	maxIter := s.rows + s.cols + 200
	for iter := 0; iter < maxIter; iter++ {
		r, worst := -1, -eps
		for i := 0; i < s.rows; i++ {
			if s.b[i] < worst {
				worst, r = s.b[i], i
			}
		}
		if r < 0 {
			return true
		}
		row := s.row(r)
		c, bestRatio := -1, math.Inf(1)
		for j := 0; j < s.cols; j++ {
			if s.banned[j] || row[j] >= -eps {
				continue
			}
			ratio := s.cost[j] / -row[j]
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (c < 0 || j < c)) {
				c, bestRatio = j, ratio
			}
		}
		if c < 0 {
			// No entering column: primal infeasible from this basis (or
			// numerics); the cold solve will give the definitive answer.
			return false
		}
		s.pivot(r, c)
	}
	return false
}

var errUnbounded = errors.New("lp: unbounded")

// pricing rules, escalating with degeneracy.
const (
	priceDantzig = iota // most negative reduced cost
	priceRandom         // uniform among negative columns (stall escape)
	priceBland          // first negative column (cannot cycle)
)

// iterate runs primal simplex pivots until optimality, unboundedness, or
// the iteration budget is exhausted. Dantzig pricing runs while the
// objective improves. Degenerate stalls — endemic to the rank-1 "skill"
// instances, whose ratio tests tie massively — switch to randomized
// pricing, which escapes degenerate vertices in a handful of pivots with
// high probability; if even that stalls, Bland's rule is the guaranteed
// backstop. Any strict improvement resets to Dantzig, so no basis can
// repeat across resets.
func (s *Solver) iterate() error {
	maxIter := 5000 + 60*(s.rows+s.cols)
	mode := priceDantzig
	stall := 0
	lastObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		col := s.chooseColumn(mode)
		if col < 0 {
			return nil // optimal
		}
		row := s.chooseRow(col)
		if row < 0 {
			return errUnbounded
		}
		s.pivot(row, col)
		obj := -s.costRHS
		switch {
		case obj < lastObj-1e-12*(1+math.Abs(lastObj)):
			lastObj = obj
			stall = 0
			mode = priceDantzig
		default:
			stall++
			switch {
			case stall > 4*s.rows+1000:
				mode = priceBland
			case stall > s.rows/2+40:
				mode = priceRandom
			}
		}
	}
	return ErrIterationLimit
}

// chooseColumn picks the entering column under the given pricing rule.
// Returns -1 at optimality.
func (s *Solver) chooseColumn(mode int) int {
	best, bestVal := -1, -costEps
	seen := uint64(0)
	for j := 0; j < s.cols; j++ {
		if s.banned[j] {
			continue
		}
		c := s.cost[j]
		if c >= -costEps {
			continue
		}
		switch mode {
		case priceBland:
			return j
		case priceRandom:
			// Reservoir-sample one negative column uniformly.
			seen++
			if s.prng.Uint64()%seen == 0 {
				best = j
			}
		default:
			if c < bestVal {
				best, bestVal = j, c
			}
		}
	}
	return best
}

// chooseRow performs the ratio test for entering column c, breaking ties by
// the smallest basis index (a cheap anti-cycling heuristic). Returns -1 if
// the column is unbounded.
func (s *Solver) chooseRow(c int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.rows; i++ {
		aic := s.a[i*s.cols+c]
		if aic <= eps {
			continue
		}
		r := s.b[i] / aic
		if r < bestRatio-eps || (r < bestRatio+eps && (best < 0 || s.basis[i] < s.basis[best])) {
			best, bestRatio = i, r
		}
	}
	return best
}

// pivot makes column c basic in row r.
func (s *Solver) pivot(r, c int) {
	pr := s.row(r)
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // kill roundoff
	s.b[r] *= inv
	for i := 0; i < s.rows; i++ {
		if i == r {
			continue
		}
		row := s.row(i)
		f := row[c]
		if f == 0 {
			continue
		}
		subRow(row, pr, f)
		row[c] = 0
		s.b[i] -= f * s.b[r]
		if s.b[i] < 0 && s.b[i] > -cleanEps {
			s.b[i] = 0
		}
	}
	if f := s.cost[c]; f != 0 {
		subRow(s.cost, pr, f)
		s.cost[c] = 0
		s.costRHS -= f * s.b[r]
	}
	s.basis[r] = c
	s.iters++
}

// subRow computes dst -= f*src over the full row. It is the hot loop of the
// solver; keeping it straight-line lets the compiler eliminate bounds checks.
func subRow(dst, src []float64, f float64) {
	_ = dst[len(src)-1]
	for j := range src {
		dst[j] -= f * src[j]
	}
}

// growFloats returns buf resized to n, zeroed, reusing its backing array
// when capacity allows (the zeroing loop compiles to memclr).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

func growRowInfos(buf []rowInfo, n int) []rowInfo {
	if cap(buf) < n {
		return make([]rowInfo, n)
	}
	return buf[:n]
}

// Residual reports the worst constraint violation of x (positive means
// infeasible by that amount) and is used by tests and defensive checks.
func (p *Problem) Residual(x []float64) float64 {
	worst := 0.0
	for _, c := range p.Cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		var v float64
		switch c.Op {
		case LE:
			v = lhs - c.B
		case GE:
			v = c.B - lhs
		case EQ:
			v = math.Abs(lhs - c.B)
		}
		if v > worst {
			worst = v
		}
	}
	for _, xi := range x {
		if -xi > worst {
			worst = -xi
		}
	}
	return worst
}
