package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestIterationDiagnostics tracks simplex pivot counts on LP1-shaped
// programs, including the degenerate rank-1 "skill" structure
// (ℓ_ij = p_i/h_j) that historically triggered Bland stalls.
func TestIterationDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	build := func(n, m int, skill bool) *Problem {
		p := NewProblem(m*n + 1)
		p.C[m*n] = 1
		pow := make([]float64, m)
		hard := make([]float64, n)
		for i := range pow {
			pow[i] = math.Pow(2, rng.Float64()*4-2)
		}
		for j := range hard {
			hard[j] = math.Pow(2, rng.Float64()*4-1)
		}
		for j := 0; j < n; j++ {
			var terms []Term
			for i := 0; i < m; i++ {
				rate := 0.05 + rng.Float64()
				if skill {
					rate = math.Min(pow[i]/hard[j], 0.5)
				}
				terms = append(terms, Term{i*n + j, rate})
			}
			p.AddConstraint(terms, GE, 0.5)
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n+1)
			for j := 0; j < n; j++ {
				terms = append(terms, Term{i*n + j, 1})
			}
			terms = append(terms, Term{m * n, -1})
			p.AddConstraint(terms, LE, 0)
		}
		return p
	}
	for _, c := range []struct {
		n, m  int
		skill bool
	}{
		{64, 16, false}, {128, 32, false}, {64, 16, true}, {128, 32, true}, {192, 16, true},
	} {
		p := build(c.n, c.m, c.skill)
		start := time.Now()
		s, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			t.Fatalf("status %v", s.Status)
		}
		if r := p.Residual(s.X); r > 1e-6 {
			t.Fatalf("residual %g", r)
		}
		t.Logf("n=%d m=%d skill=%v: %d iters in %v, obj %.3f",
			c.n, c.m, c.skill, s.Iters, time.Since(start).Round(time.Millisecond), s.Obj)
		if s.Iters > 1500+40*(c.n+c.m) {
			t.Errorf("n=%d m=%d skill=%v: %d iterations is pathological", c.n, c.m, c.skill, s.Iters)
		}
	}
}
