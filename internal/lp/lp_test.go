package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrDie(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleLP(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 2, y <= 3  =>  x=1? no:
	// optimum at (1,3): obj -7.
	p := NewProblem(2)
	p.C = []float64{-1, -2}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	p.AddConstraint([]Term{{1, 1}}, LE, 3)
	s := solveOrDie(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Obj-(-7)) > 1e-6 {
		t.Fatalf("obj = %g, want -7", s.Obj)
	}
	if math.Abs(s.X[0]-1) > 1e-6 || math.Abs(s.X[1]-3) > 1e-6 {
		t.Fatalf("x = %v, want (1,3)", s.X)
	}
}

func TestGEAndEQ(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, x = 1  => y = 1.5, obj 2.5
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, GE, 4)
	p.AddConstraint([]Term{{0, 1}}, EQ, 1)
	s := solveOrDie(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-2.5) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 2.5", s.Status, s.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	s := solveOrDie(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{-1, 0}
	p.AddConstraint([]Term{{1, 1}}, LE, 5)
	s := solveOrDie(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3)
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	s := solveOrDie(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-3) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 3", s.Status, s.Obj)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP; must terminate and find optimum.
	p := NewProblem(4)
	p.C = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	s := solveOrDie(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-(-0.05)) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal -0.05", s.Status, s.Obj)
	}
}

func TestEqualityOnly(t *testing.T) {
	// min x+y+z s.t. x+y = 2, y+z = 2: optimum y=2, obj 2.
	p := NewProblem(3)
	p.C = []float64{1, 1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{1, 1}, {2, 1}}, EQ, 2)
	s := solveOrDie(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-2) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 2", s.Status, s.Obj)
	}
}

func TestRedundantConstraints(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, GE, 4) // same halfspace
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2) // forces tightness
	s := solveOrDie(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-2) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 2", s.Status, s.Obj)
	}
}

func TestResidual(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 0.5)
	if r := p.Residual([]float64{0.5, 0.5}); r > 1e-12 {
		t.Fatalf("feasible point has residual %g", r)
	}
	if r := p.Residual([]float64{0.25, 0.5}); math.Abs(r-0.25) > 1e-12 {
		t.Fatalf("residual = %g, want 0.25", r)
	}
	// x0 = -1 violates x0 >= 0.5 by 1.5 (worse than the negativity violation of 1).
	if r := p.Residual([]float64{-1, 3}); math.Abs(r-1.5) > 1e-9 {
		t.Fatalf("worst residual = %g, want 1.5", r)
	}
	// With only the LE row, negativity dominates.
	p2 := NewProblem(1)
	p2.AddConstraint([]Term{{0, 1}}, LE, 5)
	if r := p2.Residual([]float64{-1}); math.Abs(r-1) > 1e-9 {
		t.Fatalf("negativity residual = %g, want 1", r)
	}
}

// bruteForce solves a tiny LP by vertex enumeration: every vertex of the
// feasible polytope is the intersection of nvars tight constraints drawn
// from the rows plus the axes x_i = 0.
func bruteForce(p *Problem) (float64, bool) {
	n := p.NumVars
	// Build the full halfspace list: rows then axes.
	type hs struct {
		a []float64
		b float64
	}
	var planes []hs
	for _, c := range p.Cons {
		a := make([]float64, n)
		for _, t := range c.Terms {
			a[t.Var] += t.Coef
		}
		planes = append(planes, hs{a, c.B})
	}
	for i := 0; i < n; i++ {
		a := make([]float64, n)
		a[i] = 1
		planes = append(planes, hs{a, 0})
	}
	feasible := func(x []float64) bool {
		for i := range x {
			if x[i] < -1e-7 {
				return false
			}
		}
		return p.Residual(x) < 1e-7
	}
	best, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(k, from int)
	rec = func(k, from int) {
		if k == n {
			// Solve the k tight equations by Gaussian elimination.
			a := make([][]float64, n)
			b := make([]float64, n)
			for r, pi := range idx {
				a[r] = append([]float64(nil), planes[pi].a...)
				b[r] = planes[pi].b
			}
			x, ok := gauss(a, b)
			if !ok || !feasible(x) {
				return
			}
			obj := 0.0
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj < best {
				best, found = obj, true
			}
			return
		}
		for i := from; i < len(planes); i++ {
			idx[k] = i
			rec(k+1, i+1)
		}
	}
	rec(0, 0)
	return best, found
}

func gauss(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > pv {
				piv, pv = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for j := col; j < n; j++ {
			a[col][j] *= inv
		}
		b[col] *= inv
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	return b, true
}

func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2 or 3 vars
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*10) - 3 // mostly positive
		}
		// Bound the feasible region so the LP can't be unbounded:
		// sum x_i <= 10.
		sum := make([]Term, n)
		for j := 0; j < n; j++ {
			sum[j] = Term{j, 1}
		}
		p.AddConstraint(sum, LE, 10)
		nc := 1 + rng.Intn(4)
		for k := 0; k < nc; k++ {
			var terms []Term
			for j := 0; j < n; j++ {
				c := math.Round(rng.Float64()*8) - 4
				if c != 0 {
					terms = append(terms, Term{j, c})
				}
			}
			if len(terms) == 0 {
				continue
			}
			op := LE
			if rng.Intn(2) == 0 {
				op = GE
			}
			p.AddConstraint(terms, op, math.Round(rng.Float64()*10)-2)
		}
		s, err := Solve(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, found := bruteForce(p)
		if !found {
			return s.Status == Infeasible
		}
		if s.Status != Optimal {
			t.Logf("seed %d: simplex says %v, brute force found obj %g", seed, s.Status, want)
			return false
		}
		if math.Abs(s.Obj-want) > 1e-5*(1+math.Abs(want)) {
			t.Logf("seed %d: simplex obj %g, brute force %g", seed, s.Obj, want)
			return false
		}
		if r := p.Residual(s.X); r > 1e-6 {
			t.Logf("seed %d: residual %g", seed, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLP1Shaped exercises the solver on problems with the structure of the
// paper's (LP1): mass covering rows and machine load rows.
func TestLP1Shaped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10) // jobs
		m := 1 + rng.Intn(6)  // machines
		L := 0.5
		// Variables: x_ij (i*n + j), then t at index m*n.
		p := NewProblem(m*n + 1)
		p.C[m*n] = 1
		ell := make([][]float64, m)
		for i := range ell {
			ell[i] = make([]float64, n)
			for j := range ell[i] {
				ell[i][j] = math.Min(rng.Float64()*2, L)
			}
		}
		for j := 0; j < n; j++ {
			var terms []Term
			for i := 0; i < m; i++ {
				if ell[i][j] > 0 {
					terms = append(terms, Term{i*n + j, ell[i][j]})
				}
			}
			p.AddConstraint(terms, GE, L)
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n+1)
			for j := 0; j < n; j++ {
				terms = append(terms, Term{i*n + j, 1})
			}
			terms = append(terms, Term{m * n, -1})
			p.AddConstraint(terms, LE, 0)
		}
		s := solveOrDie(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if r := p.Residual(s.X); r > 1e-6 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
		if s.Obj < -1e-9 {
			t.Fatalf("trial %d: negative makespan %g", trial, s.Obj)
		}
	}
}

func TestObjectiveMismatch(t *testing.T) {
	p := &Problem{NumVars: 2, C: []float64{1}}
	if _, err := Solve(p); err == nil {
		t.Fatal("want error for mismatched objective length")
	}
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{3, 1}}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("want error for out-of-range variable")
	}
}

func BenchmarkSimplexLP1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 40, 16
	p := NewProblem(m*n + 1)
	p.C[m*n] = 1
	for j := 0; j < n; j++ {
		var terms []Term
		for i := 0; i < m; i++ {
			terms = append(terms, Term{i*n + j, rng.Float64()})
		}
		p.AddConstraint(terms, GE, 0.5)
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, n+1)
		for j := 0; j < n; j++ {
			terms = append(terms, Term{i*n + j, 1})
		}
		terms = append(terms, Term{m * n, -1})
		p.AddConstraint(terms, LE, 0)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
