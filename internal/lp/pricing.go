package lp

// Candidate-list partial pricing for the sparse revised simplex. A full
// Dantzig sweep prices every column against the current duals — O(nnz(A))
// per pivot, which at LP1 scale is thousands of sparse dot products. The
// candidate list amortizes that: one full sweep collects the K most
// negative reduced costs into a short list, and subsequent pivots re-price
// only the list (K sparse dots) until it goes dry, at which point the next
// full sweep rebuilds it. Optimality is only ever declared by a full sweep
// that finds no negative column, so the rule is exact — partial pricing
// changes the pivot sequence, never the answer. The stall-escape modes
// (random, Bland) price the full column range directly; they are rare and
// correctness-critical, not hot.

// pricer is the candidate list. It stores column ids only; reduced costs
// are recomputed against the current duals at every use, so staleness can
// waste a list slot but never mislead the pivot choice.
type pricer struct {
	cand   []int32
	k      int // target list length
	cursor int // rebuild scan position (round-robin across rebuilds)
	stride int // rebuild scan step, coprime with cols so one pass covers all
}

// reset empties the list and sizes it for a problem with cols columns. The
// rebuild scan step is chosen near cols/k and coprime with cols: a strided
// pass still visits every column exactly once (the optimality certificate
// needs that), but consecutive candidates land in distant column ranges.
// That matters for LP1's layout, where x_{i,pos} columns of one machine row
// are contiguous: a unit-stride scan fills the list from a single machine
// block, and the first pivot on that machine flips the whole list.
func (pr *pricer) reset(cols int) {
	pr.cand = pr.cand[:0]
	pr.k = 16 + cols/64
	pr.cursor = 0
	st := cols / (pr.k + 1)
	if st < 1 {
		st = 1
	}
	for cols > 1 && gcd(st, cols) != 1 {
		st++
	}
	pr.stride = st
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// reducedCost computes c_j − y·a_j against the current duals (row space).
func (s *Solver) reducedCost(j int) float64 {
	sp := &s.sp
	d := sp.cost[j]
	for t := sp.colPtr[j]; t < sp.colPtr[j+1]; t++ {
		d -= sp.y[sp.colRow[t]] * sp.colVal[t]
	}
	return d
}

// priceSparse picks the entering column under the given pricing rule using
// the duals in s.sp.y. Returns -1 at optimality (Dantzig/Bland modes) or
// when no negative column exists (random mode).
func (s *Solver) priceSparse(mode int) int {
	sp := &s.sp
	switch mode {
	case priceBland:
		for j := 0; j < sp.cols; j++ {
			if sp.banned[j] || sp.inBasis[j] {
				continue
			}
			if s.reducedCost(j) < -costEps {
				return j
			}
		}
		return -1
	}
	// Dantzig and random modes both work off the candidate list: re-price
	// the surviving candidates, then either take the most negative
	// (Dantzig) or sample one uniformly (the stall escape — randomizing
	// among the K best candidates breaks degenerate ties without paying a
	// full sweep per pivot). An empty list forces a full rebuild sweep,
	// whose empty result is the optimality certificate for both modes.
	pr := &sp.pr
	best, bestD := -1, -costEps
	seen := uint64(0)
	out := pr.cand[:0]
	for _, j32 := range pr.cand {
		j := int(j32)
		if sp.banned[j] || sp.inBasis[j] {
			continue
		}
		if d := s.reducedCost(j); d < -costEps {
			out = append(out, j32)
			if mode == priceRandom {
				seen++
				if s.prng.Uint64()%seen == 0 {
					best = j
				}
			} else if d < bestD {
				best, bestD = j, d
			}
		}
	}
	pr.cand = out
	if best >= 0 {
		return best
	}
	best = s.rebuildCandidates()
	if best < 0 || mode != priceRandom {
		return best
	}
	return int(pr.cand[s.prng.Uint64()%uint64(len(pr.cand))])
}

// rebuildCandidates refills the list by sectional scan: starting at the
// round-robin cursor (so consecutive rebuilds sample different column
// ranges — on LP1 the most negative columns cluster on one machine row and
// a single pivot can flip the whole cluster, which made most-negative-only
// lists go dry every pivot), it collects the first k negative columns,
// wrapping at most once. It returns the most negative column collected, or
// -1: only a complete wrap that found no negative column declares
// optimality, so the sectional rule stays exact.
func (s *Solver) rebuildCandidates() int {
	sp := &s.sp
	pr := &sp.pr
	cand := pr.cand[:0]
	best, bestD := -1, -costEps
	j := pr.cursor
	if j >= sp.cols {
		j = 0
	}
	for scanned := 0; scanned < sp.cols; scanned++ {
		if !sp.banned[j] && !sp.inBasis[j] {
			if d := s.reducedCost(j); d < -costEps {
				cand = append(cand, int32(j))
				if d < bestD {
					best, bestD = j, d
				}
			}
		}
		j += pr.stride
		if j >= sp.cols {
			j -= sp.cols
		}
		if len(cand) >= pr.k {
			break
		}
	}
	pr.cursor = j
	pr.cand = cand
	return best
}
