package lp

import (
	"math/rand"
	"testing"
)

// benchCover builds a dense covering instance big enough that the oracle's
// inner loop (machine selection per increment) dominates.
func benchCover(m, n int) *CoverInstance {
	rng := rand.New(rand.NewSource(7))
	rates := make([][]float64, m)
	for i := range rates {
		rates[i] = make([]float64, n)
		for j := range rates[i] {
			if rng.Float64() < 0.7 {
				rates[i][j] = 0.1 + rng.Float64()
			}
		}
	}
	demands := make([]float64, n)
	for j := range demands {
		demands[j] = 1 + 4*rng.Float64()
		// Guarantee coverability regardless of the sparsity draw.
		if rates[j%m][j] == 0 {
			rates[j%m][j] = 0.5
		}
	}
	return &CoverInstance{M: m, N: n, Rates: rates, Demands: demands}
}

// BenchmarkMWU pins the multiplicative-weights solver: the lazy
// best-machine cache means each increment is O(1) until the cached
// machine's weight moves, instead of an O(m) rescan per increment.
func BenchmarkMWU(b *testing.B) {
	ins := benchCover(32, 96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveCoverMWU(ins, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
