package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCoverLarge draws LP1-realistically-shaped covering instances:
// more machines and jobs than randomCover, rates in the capped-log-failure
// range (0, 0.5], sparse availability, uniform demands L — the shape every
// SolveCoverMWU call in the repo actually has.
func randomCoverLarge(rng *rand.Rand) *CoverInstance {
	m, n := 4+rng.Intn(9), 8+rng.Intn(33)
	ins := &CoverInstance{M: m, N: n, Rates: make([][]float64, m), Demands: make([]float64, n)}
	for i := range ins.Rates {
		ins.Rates[i] = make([]float64, n)
		for j := range ins.Rates[i] {
			if rng.Float64() < 0.7 {
				ins.Rates[i][j] = 0.01 + 0.49*rng.Float64()
			}
		}
	}
	L := 0.5
	for j := range ins.Demands {
		ins.Demands[j] = L
		if allZeroCol(ins.Rates, j) {
			ins.Rates[rng.Intn(m)][j] = 0.25
		}
	}
	return ins
}

// TestMWUNearOptimalLarge is the (1+eps) property test at realistic LP1
// scale, swept over eps: for random CoverInstances the MWU t* must bracket
// the exact simplex t* within the approximation slack, at every eps the
// repo uses. (TestMWUNearOptimal covers tiny shapes more densely.)
func TestMWUNearOptimalLarge(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		eps := eps
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			ins := randomCoverLarge(rng)
			_, got, err := SolveCoverMWU(ins, eps)
			if err != nil {
				t.Logf("eps %g seed %d: %v", eps, seed, err)
				return false
			}
			want := coverViaSimplex(t, ins)
			if got < want/(1+eps)-1e-9 {
				t.Logf("eps %g seed %d (m=%d n=%d): mwu t* %g below simplex t* %g beyond (1+eps)",
					eps, seed, ins.M, ins.N, got, want)
				return false
			}
			if got > want*(1+4*eps)+1e-9 {
				t.Logf("eps %g seed %d (m=%d n=%d): mwu t* %g above simplex t* %g beyond slack",
					eps, seed, ins.M, ins.N, got, want)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("eps %g: %v", eps, err)
		}
	}
}
