package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func coverViaSimplex(t *testing.T, ins *CoverInstance) float64 {
	t.Helper()
	p := NewProblem(ins.M*ins.N + 1)
	tv := ins.M * ins.N
	p.C[tv] = 1
	for j := 0; j < ins.N; j++ {
		var terms []Term
		for i := 0; i < ins.M; i++ {
			if ins.Rates[i][j] > 0 {
				terms = append(terms, Term{i*ins.N + j, ins.Rates[i][j]})
			}
		}
		p.AddConstraint(terms, GE, ins.Demands[j])
	}
	for i := 0; i < ins.M; i++ {
		terms := make([]Term, 0, ins.N+1)
		for j := 0; j < ins.N; j++ {
			terms = append(terms, Term{i*ins.N + j, 1})
		}
		terms = append(terms, Term{tv, -1})
		p.AddConstraint(terms, LE, 0)
	}
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("simplex reference failed: %v %v", err, s)
	}
	return s.Obj
}

func randomCover(rng *rand.Rand) *CoverInstance {
	m, n := 1+rng.Intn(5), 1+rng.Intn(8)
	ins := &CoverInstance{M: m, N: n, Rates: make([][]float64, m), Demands: make([]float64, n)}
	for i := range ins.Rates {
		ins.Rates[i] = make([]float64, n)
		for j := range ins.Rates[i] {
			if rng.Float64() < 0.8 {
				ins.Rates[i][j] = 0.05 + 2*rng.Float64()
			}
		}
	}
	for j := range ins.Demands {
		ins.Demands[j] = 0.25 + 2*rng.Float64()
		// Guarantee coverability.
		if allZeroCol(ins.Rates, j) {
			ins.Rates[rng.Intn(m)][j] = 1
		}
	}
	return ins
}

func allZeroCol(a [][]float64, j int) bool {
	for i := range a {
		if a[i][j] > 0 {
			return false
		}
	}
	return true
}

// TestMWUNearOptimal: the MWU value must be within (1+O(eps)) of the
// simplex optimum and the returned solution must actually be feasible.
func TestMWUNearOptimal(t *testing.T) {
	const eps = 0.1
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomCover(rng)
		x, got, err := SolveCoverMWU(ins, eps)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := coverViaSimplex(t, ins)
		// The routing is feasible at loads ≤ (1+eps)·got, so the true
		// optimum satisfies want ≤ (1+eps)·got; got may sit slightly
		// below want but never by more than the relaxation factor.
		if got < want/(1+eps)-1e-9 {
			t.Logf("seed %d: mwu %g below optimum %g beyond the (1+eps) slack", seed, got, want)
			return false
		}
		if got > want*(1+4*eps)+1e-9 {
			t.Logf("seed %d: mwu %g too far above optimum %g", seed, got, want)
			return false
		}
		// Feasibility of the certificate: demands covered, loads ≤ (1+eps)t.
		for j := 0; j < ins.N; j++ {
			mass := 0.0
			for i := 0; i < ins.M; i++ {
				mass += ins.Rates[i][j] * x[i][j]
			}
			if mass < ins.Demands[j]*(1-1e-9) {
				t.Logf("seed %d: job %d covered %g of %g", seed, j, mass, ins.Demands[j])
				return false
			}
		}
		for i := 0; i < ins.M; i++ {
			load := 0.0
			for j := 0; j < ins.N; j++ {
				load += x[i][j]
			}
			if load > (1+eps)*got+1e-9 {
				t.Logf("seed %d: machine %d load %g over (1+eps)t = %g", seed, i, load, (1+eps)*got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMWUErrors(t *testing.T) {
	good := &CoverInstance{M: 1, N: 1, Rates: [][]float64{{1}}, Demands: []float64{1}}
	if _, _, err := SolveCoverMWU(good, 0); err == nil {
		t.Fatal("eps=0 must error")
	}
	if _, _, err := SolveCoverMWU(&CoverInstance{}, 0.1); err == nil {
		t.Fatal("empty must error")
	}
	bad := &CoverInstance{M: 1, N: 1, Rates: [][]float64{{0}}, Demands: []float64{1}}
	if _, _, err := SolveCoverMWU(bad, 0.1); err == nil {
		t.Fatal("uncoverable job must error")
	}
	neg := &CoverInstance{M: 1, N: 1, Rates: [][]float64{{1}}, Demands: []float64{-1}}
	if _, _, err := SolveCoverMWU(neg, 0.1); err == nil {
		t.Fatal("negative demand must error")
	}
}

func TestMWUSingleMachine(t *testing.T) {
	// One machine: t = Σ L_j / a_j exactly (up to eps).
	ins := &CoverInstance{
		M:       1,
		N:       3,
		Rates:   [][]float64{{1, 2, 4}},
		Demands: []float64{1, 1, 1},
	}
	_, got, err := SolveCoverMWU(ins, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 0.5 + 0.25
	if math.Abs(got-want) > 0.3*want {
		t.Fatalf("got %g, want ≈ %g", got, want)
	}
}

func BenchmarkMWUvsSimplex(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, n := 32, 128
	ins := &CoverInstance{M: m, N: n, Rates: make([][]float64, m), Demands: make([]float64, n)}
	for i := range ins.Rates {
		ins.Rates[i] = make([]float64, n)
		for j := range ins.Rates[i] {
			ins.Rates[i][j] = 0.05 + rng.Float64()
		}
	}
	for j := range ins.Demands {
		ins.Demands[j] = 0.5
	}
	b.Run("mwu", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			if _, _, err := SolveCoverMWU(ins, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplex", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			p := NewProblem(m*n + 1)
			tv := m * n
			p.C[tv] = 1
			for j := 0; j < n; j++ {
				var terms []Term
				for i := 0; i < m; i++ {
					terms = append(terms, Term{i*n + j, ins.Rates[i][j]})
				}
				p.AddConstraint(terms, GE, 0.5)
			}
			for i := 0; i < m; i++ {
				terms := make([]Term, 0, n+1)
				for j := 0; j < n; j++ {
					terms = append(terms, Term{i*n + j, 1})
				}
				terms = append(terms, Term{tv, -1})
				p.AddConstraint(terms, LE, 0)
			}
			if _, err := Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
