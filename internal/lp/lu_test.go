package lp

import (
	"math"
	"math/rand"
	"testing"
)

// basisMul computes B·x for the current sparse basis (columns basisCols in
// position order) straight from the CSC matrix, the ground truth the
// factorization is checked against.
func (s *Solver) basisMul(x []float64, out []float64) {
	sp := &s.sp
	for i := range out {
		out[i] = 0
	}
	for pos := 0; pos < sp.rows; pos++ {
		v := x[pos]
		if v == 0 {
			continue
		}
		rows, vals := s.col(sp.basisCols[pos])
		for t, r := range rows {
			out[r] += vals[t] * v
		}
	}
}

// luDrift measures ‖B·(B⁻¹e) − e‖∞ over a handful of unit vectors, i.e.
// how far the factorization-plus-eta-file has drifted from the basis it
// claims to represent.
func (s *Solver) luDrift(rng *rand.Rand, probes int) float64 {
	sp := &s.sp
	e := make([]float64, sp.rows)
	x := make([]float64, sp.rows)
	back := make([]float64, sp.rows)
	worst := 0.0
	for p := 0; p < probes; p++ {
		r := rng.Intn(sp.rows)
		e[r] = 1
		sp.lu.ftranDense(e, x)
		s.basisMul(x, back)
		for i := range back {
			want := 0.0
			if i == r {
				want = 1
			}
			if d := math.Abs(back[i] - want); d > worst {
				worst = d
			}
		}
		e[r] = 0
	}
	return worst
}

// TestLUUpdateDrift is the LU-update property test: starting from a
// factorized LP1-shaped basis, apply long runs of random pivots through
// the product-form eta file and verify that B·B⁻¹ stays within 1e-9 of the
// identity between refactorizations — i.e. eta accumulation does not rot
// the factorization faster than the refactor cadence cleans it up.
func TestLUUpdateDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		m := 6 + rng.Intn(6)
		n := 16 + rng.Intn(24)
		ell := randomRates(rng, m, n)
		jobs := make([]int, n)
		for j := range jobs {
			jobs[j] = j
		}
		p := buildLP1Shaped(ell, jobs, 0.5)
		s := NewSolver()
		if err := s.setupSparse(p); err != nil {
			t.Fatal(err)
		}
		if !s.factorizeSparse() {
			t.Fatal("initial factorization failed")
		}
		sp := &s.sp
		pivots := 3 * luMaxEtas // cross at least three refactorizations
		applied := 0
		for step := 0; applied < pivots && step < 50*pivots; step++ {
			if err := s.ensureFreshSparse(); err != nil {
				t.Fatalf("refactorization failed after %d pivots", applied)
			}
			q := rng.Intn(sp.cols)
			if sp.inBasis[q] {
				continue
			}
			s.ftranCol(q, sp.w)
			// Pick a well-conditioned pivot row so the random walk stays
			// numerically meaningful (the solver's ratio test does the
			// analogous job in real solves).
			best, bestAbs := -1, 0.0
			for i := 0; i < sp.rows; i++ {
				if a := math.Abs(sp.w[i]); a > bestAbs {
					best, bestAbs = i, a
				}
			}
			if best < 0 || bestAbs < 0.01 {
				continue
			}
			s.pivotSparse(q, best, sp.w)
			applied++
			if applied%7 == 0 {
				if drift := s.luDrift(rng, 4); drift > 1e-9 {
					t.Fatalf("trial %d: drift %g after %d pivots (%d etas)",
						trial, drift, applied, sp.lu.nEtas)
				}
			}
		}
		if applied < pivots {
			t.Fatalf("trial %d: only applied %d of %d pivots", trial, applied, pivots)
		}
		if drift := s.luDrift(rng, 8); drift > 1e-9 {
			t.Fatalf("trial %d: final drift %g", trial, drift)
		}
	}
}

// TestLUFtranBtranAdjoint checks that FTRAN and BTRAN answer queries
// against the same operator: for random b and c, c·(B⁻¹b) must equal
// (B⁻ᵀc)·b, including through a populated eta file.
func TestLUFtranBtranAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n := 7, 20
	ell := randomRates(rng, m, n)
	jobs := make([]int, n)
	for j := range jobs {
		jobs[j] = j
	}
	p := buildLP1Shaped(ell, jobs, 0.5)
	s := NewSolver()
	if err := s.setupSparse(p); err != nil {
		t.Fatal(err)
	}
	if !s.factorizeSparse() {
		t.Fatal("factorization failed")
	}
	sp := &s.sp
	// Walk some pivots in so the eta file participates.
	for applied := 0; applied < luMaxEtas/2; {
		q := rng.Intn(sp.cols)
		if sp.inBasis[q] {
			continue
		}
		s.ftranCol(q, sp.w)
		best, bestAbs := -1, 0.0
		for i := 0; i < sp.rows; i++ {
			if a := math.Abs(sp.w[i]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 || bestAbs < 0.01 {
			continue
		}
		s.pivotSparse(q, best, sp.w)
		applied++
	}
	b := make([]float64, sp.rows)
	c := make([]float64, sp.rows)
	x := make([]float64, sp.rows)
	y := make([]float64, sp.rows)
	for probe := 0; probe < 20; probe++ {
		for i := range b {
			b[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		sp.lu.ftranDense(b, x)
		sp.lu.btran(c, y)
		cx, yb := 0.0, 0.0
		for i := range x {
			cx += c[i] * x[i]
			yb += y[i] * b[i]
		}
		if diff := math.Abs(cx - yb); diff > 1e-8*(1+math.Abs(cx)) {
			t.Fatalf("probe %d: c·(B⁻¹b) = %.12g but (B⁻ᵀc)·b = %.12g", probe, cx, yb)
		}
	}
}
