package lp

// The dense two-phase tableau engine. This was the package's only engine
// through PR 2; it is kept fully working as (a) the reference the sparse
// revised simplex is differentially tested against and (b) the automatic
// fallback for sparse numerical bailouts. Select it with Solver{Dense:
// true}. It uses Dantzig pricing with a ratio-test tie-break on basis
// index, and falls back to Bland's rule when it detects stalling, which
// guarantees termination.

import (
	"errors"
	"fmt"
	"math"
)

// solveDense solves the problem from a cold (all-slack) start on the dense
// tableau engine.
func (s *Solver) solveDense(p *Problem) (*Solution, error) {
	if err := s.setup(p); err != nil {
		return nil, err
	}
	s.ColdSolves++
	if infeasible, err := s.phase1(); err != nil {
		return nil, err
	} else if infeasible {
		return &Solution{Status: Infeasible, Iters: s.iters}, nil
	}
	s.phase2Prep(p)
	switch err := s.iterate(); {
	case err == errUnbounded:
		return &Solution{Status: Unbounded, Iters: s.iters}, nil
	case err != nil:
		return nil, err
	}
	return s.extract(p), nil
}

// setup normalizes the constraints and (re)builds the initial all-slack
// tableau in the workspace's flat backing arrays.
func (s *Solver) setup(p *Problem) error {
	rows, slacks, artificials, err := s.normalize(p)
	if err != nil {
		return err
	}
	m := len(p.Cons)
	n := p.NumVars

	cols := n + slacks + artificials
	s.rows, s.cols, s.n = m, cols, n
	s.artStart = n + slacks
	s.a = growFloats(s.a, m*cols)
	s.b = growFloats(s.b, m)
	s.cost = growFloats(s.cost, cols)
	s.basis = growInts(s.basis, m)
	s.banned = growBools(s.banned, cols)
	s.auxOf = growInts(s.auxOf, cols)
	s.rowAux = growInts(s.rowAux, m)
	s.rowArt = growInts(s.rowArt, m)
	for j := 0; j < n; j++ {
		s.auxOf[j] = -1
	}
	s.costRHS = 0
	s.iters = 0
	// Deterministic per-shape stream for the randomized anti-stall pricing;
	// SplitMix64 reseeds by a single word write, unlike the ~4.9 KB
	// rand.NewSource this replaced.
	s.prng.Seed(int64(m)*1e6 + int64(cols))

	slackIdx, artIdx := n, s.artStart
	for i, ri := range rows {
		row := s.row(i)
		for _, term := range ri.terms {
			if term.Var < 0 || term.Var >= n {
				return fmt.Errorf("lp: constraint %d references variable %d (have %d)", i, term.Var, n)
			}
			row[term.Var] += term.Coef
		}
		s.b[i] = ri.b
		s.rowAux[i], s.rowArt[i] = -1, -1
		switch ri.op {
		case LE:
			row[slackIdx] = 1
			s.auxOf[slackIdx] = i
			s.rowAux[i] = slackIdx
			s.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			s.auxOf[slackIdx] = i
			s.rowAux[i] = slackIdx
			slackIdx++
			row[artIdx] = 1
			s.auxOf[artIdx] = i
			s.rowArt[i] = artIdx
			s.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			s.auxOf[artIdx] = i
			s.rowArt[i] = artIdx
			s.basis[i] = artIdx
			artIdx++
		}
	}
	return nil
}

// row returns the tableau row as a slice of the flat backing array. The
// three-index form pins cap so subRow's bounds-check elimination holds.
func (s *Solver) row(i int) []float64 {
	off := i * s.cols
	return s.a[off : off+s.cols : off+s.cols]
}

// phase1 minimizes the sum of artificials and drives them out of the
// basis. It reports infeasibility; on success artificial columns are
// banned and the tableau holds a basic feasible solution.
func (s *Solver) phase1() (infeasible bool, err error) {
	if s.artStart == s.cols {
		return false, nil
	}
	for j := s.artStart; j < s.cols; j++ {
		s.cost[j] = 1
	}
	s.costRHS = 0
	for i := 0; i < s.rows; i++ {
		if s.basis[i] >= s.artStart {
			subRow(s.cost, s.row(i), 1)
			s.costRHS -= s.b[i]
		}
	}
	if err := s.iterate(); err != nil {
		return false, err
	}
	if -s.costRHS > 1e-7*(1+math.Abs(s.costRHS)) && -s.costRHS > 1e-7 {
		return true, nil
	}
	// Drive any remaining artificials out of the basis.
	for i := 0; i < s.rows; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		pivoted := false
		row := s.row(i)
		for j := 0; j < s.artStart; j++ {
			if math.Abs(row[j]) > pivotTol {
				s.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: the artificial stays basic at value 0.
			s.b[i] = 0
		}
	}
	for j := s.artStart; j < s.cols; j++ {
		s.banned[j] = true
	}
	return false, nil
}

// phase2Prep installs the original objective's reduced costs for the
// current basis.
func (s *Solver) phase2Prep(p *Problem) {
	for j := range s.cost {
		s.cost[j] = 0
	}
	copy(s.cost, p.C)
	s.costRHS = 0
	for i := 0; i < s.rows; i++ {
		cb := 0.0
		if s.basis[i] < s.n {
			cb = p.C[s.basis[i]]
		}
		if cb != 0 {
			subRow(s.cost, s.row(i), cb)
			s.costRHS -= cb * s.b[i]
		}
	}
}

// extract reads the optimal solution and basis out of the tableau.
func (s *Solver) extract(p *Problem) *Solution {
	x := make([]float64, s.n)
	for i, bi := range s.basis {
		if bi < s.n {
			v := s.b[i]
			if v < 0 && v > -cleanEps {
				v = 0
			}
			x[bi] = v
		}
	}
	obj := 0.0
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	basis := make([]int, s.rows)
	for i, bi := range s.basis {
		if bi < s.n {
			basis[i] = bi
		} else {
			basis[i] = -1 - s.auxOf[bi]
		}
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: s.iters, Basis: basis}
}

// tryWarm attempts the warm-start path: install the hinted basis, repair
// primal feasibility with dual pivots, finish with primal phase 2. A false
// ok means the caller should fall back to a cold solve.
func (s *Solver) tryWarm(p *Problem, hint []int) (sol *Solution, ok bool, err error) {
	if err := s.setup(p); err != nil {
		return nil, false, err
	}
	s.installBasis(hint)
	// Artificials may never (re-)enter; a hinted basis replaces phase 1.
	for j := s.artStart; j < s.cols; j++ {
		s.banned[j] = true
	}
	// An artificial stuck basic at a meaningfully positive value means the
	// install did not reach a feasible basis of the original rows.
	for i := 0; i < s.rows; i++ {
		if s.basis[i] >= s.artStart && s.b[i] > pivotTol {
			return nil, false, nil
		}
	}
	s.phase2Prep(p)
	if !s.dualRepair() {
		return nil, false, nil
	}
	if err := s.iterate(); err != nil {
		// Unbounded or stalled on the warm path: let the cold solve decide.
		return nil, false, nil
	}
	// Re-check stuck artificials at the final basis: repair and phase-2
	// pivots can have grown a basic artificial's b since the pre-repair
	// check, and a positive artificial means the point violates its
	// original row even though the reduced costs look optimal.
	for i := 0; i < s.rows; i++ {
		if s.basis[i] >= s.artStart && s.b[i] > pivotTol {
			return nil, false, nil
		}
	}
	return s.extract(p), true, nil
}

// installBasis pivots the hinted columns into the basis. The hint names a
// column per row, but a basis is really a column *set*: in the previous
// final tableau a column can be basic in a row where the fresh tableau has
// a zero coefficient, so row-by-row pivoting breaks down. Instead this is
// Gaussian elimination with row partial pivoting — for each desired column,
// pivot in the unclaimed row where its current coefficient is largest —
// which cannot break down when the desired set is a genuine basis of the
// new matrix. Columns that cannot be pivoted in (departed-structure
// leftovers, near-singular coefficients) are skipped; their rows keep the
// initial slack/artificial and the caller's feasibility checks decide.
func (s *Solver) installBasis(hint []int) {
	inB := growBools(s.inBasis, s.cols)
	s.inBasis = inB
	for _, bi := range s.basis {
		inB[bi] = true
	}
	want := growBools(s.wantCol, s.cols)
	s.wantCol = want
	des := growInts(s.desired, s.rows)[:0]
	s.desired = des
	for _, h := range hint {
		c := -1
		switch {
		case h >= 0 && h < s.n:
			c = h
		case h != NoHint && h < 0:
			if rr := -1 - h; rr >= 0 && rr < s.rows {
				c = s.rowAux[rr]
			}
		}
		if c >= 0 && !want[c] {
			want[c] = true
			des = append(des, c)
		}
	}
	s.desired = des
	// Rows whose initial basic column is already desired are settled.
	claimed := growBools(s.claimed, s.rows)
	s.claimed = claimed
	for r := 0; r < s.rows; r++ {
		if want[s.basis[r]] {
			claimed[r] = true
		}
	}
	for _, c := range des {
		if inB[c] {
			continue
		}
		best, bestV := -1, pivotTol
		for r := 0; r < s.rows; r++ {
			if claimed[r] {
				continue
			}
			if v := math.Abs(s.a[r*s.cols+c]); v > bestV {
				best, bestV = r, v
			}
		}
		if best < 0 {
			continue
		}
		inB[s.basis[best]] = false
		s.pivot(best, c)
		inB[c] = true
		claimed[best] = true
	}
	// Rows still holding their artificial — hints lost to departed
	// structure — swap it for the row's own slack/surplus when possible.
	// For a surplus (GE) row this turns a would-be rejection (artificial
	// basic at b > 0) into a plain negative-b row that dualRepair fixes.
	for r := 0; r < s.rows; r++ {
		if s.basis[r] < s.artStart {
			continue
		}
		c := s.rowAux[r]
		if c < 0 || inB[c] {
			continue
		}
		if v := math.Abs(s.a[r*s.cols+c]); v > pivotTol {
			inB[s.basis[r]] = false
			s.pivot(r, c)
			inB[c] = true
		}
	}
}

// dualRepair restores primal feasibility (b ≥ 0) with dual simplex pivots,
// the standard warm-start repair for a changed right-hand side. When the
// installed basis is also dual infeasible (doubling L perturbs the capped
// cover coefficients, so reduced costs drift), the same loop still runs as
// a plain feasibility heuristic — its termination guarantee is then only
// the iteration cap, but any basis it reaches with b ≥ 0 is a legitimate
// phase-2 start, and the subsequent primal iterate restores optimality
// regardless of the pivot path. Returns false when the warm path should be
// abandoned.
func (s *Solver) dualRepair() bool {
	maxIter := s.rows + s.cols + 200
	for iter := 0; iter < maxIter; iter++ {
		r, worst := -1, -eps
		for i := 0; i < s.rows; i++ {
			if s.b[i] < worst {
				worst, r = s.b[i], i
			}
		}
		if r < 0 {
			return true
		}
		row := s.row(r)
		c, bestRatio := -1, math.Inf(1)
		for j := 0; j < s.cols; j++ {
			if s.banned[j] || row[j] >= -eps {
				continue
			}
			ratio := s.cost[j] / -row[j]
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (c < 0 || j < c)) {
				c, bestRatio = j, ratio
			}
		}
		if c < 0 {
			// No entering column: primal infeasible from this basis (or
			// numerics); the cold solve will give the definitive answer.
			return false
		}
		s.pivot(r, c)
	}
	return false
}

var errUnbounded = errors.New("lp: unbounded")

// pricing rules, escalating with degeneracy.
const (
	priceDantzig = iota // most negative reduced cost
	priceRandom         // uniform among negative columns (stall escape)
	priceBland          // first negative column (cannot cycle)
)

// iterate runs primal simplex pivots until optimality, unboundedness, or
// the iteration budget is exhausted. Dantzig pricing runs while the
// objective improves. Degenerate stalls — endemic to the rank-1 "skill"
// instances, whose ratio tests tie massively — switch to randomized
// pricing, which escapes degenerate vertices in a handful of pivots with
// high probability; if even that stalls, Bland's rule is the guaranteed
// backstop. Any strict improvement resets to Dantzig, so no basis can
// repeat across resets.
func (s *Solver) iterate() error {
	maxIter := 5000 + 60*(s.rows+s.cols)
	mode := priceDantzig
	stall := 0
	lastObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		col := s.chooseColumn(mode)
		if col < 0 {
			return nil // optimal
		}
		row := s.chooseRow(col)
		if row < 0 {
			return errUnbounded
		}
		s.pivot(row, col)
		obj := -s.costRHS
		switch {
		case obj < lastObj-1e-12*(1+math.Abs(lastObj)):
			lastObj = obj
			stall = 0
			mode = priceDantzig
		default:
			stall++
			switch {
			case stall > 4*s.rows+1000:
				mode = priceBland
			case stall > s.rows/2+40:
				mode = priceRandom
			}
		}
	}
	return ErrIterationLimit
}

// chooseColumn picks the entering column under the given pricing rule.
// Returns -1 at optimality.
func (s *Solver) chooseColumn(mode int) int {
	best, bestVal := -1, -costEps
	seen := uint64(0)
	for j := 0; j < s.cols; j++ {
		if s.banned[j] {
			continue
		}
		c := s.cost[j]
		if c >= -costEps {
			continue
		}
		switch mode {
		case priceBland:
			return j
		case priceRandom:
			// Reservoir-sample one negative column uniformly.
			seen++
			if s.prng.Uint64()%seen == 0 {
				best = j
			}
		default:
			if c < bestVal {
				best, bestVal = j, c
			}
		}
	}
	return best
}

// chooseRow performs the ratio test for entering column c, breaking ties by
// the smallest basis index (a cheap anti-cycling heuristic). Returns -1 if
// the column is unbounded.
func (s *Solver) chooseRow(c int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.rows; i++ {
		aic := s.a[i*s.cols+c]
		if aic <= eps {
			continue
		}
		r := s.b[i] / aic
		if r < bestRatio-eps || (r < bestRatio+eps && (best < 0 || s.basis[i] < s.basis[best])) {
			best, bestRatio = i, r
		}
	}
	return best
}

// pivot makes column c basic in row r.
func (s *Solver) pivot(r, c int) {
	pr := s.row(r)
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // kill roundoff
	s.b[r] *= inv
	for i := 0; i < s.rows; i++ {
		if i == r {
			continue
		}
		row := s.row(i)
		f := row[c]
		if f == 0 {
			continue
		}
		subRow(row, pr, f)
		row[c] = 0
		s.b[i] -= f * s.b[r]
		if s.b[i] < 0 && s.b[i] > -cleanEps {
			s.b[i] = 0
		}
	}
	if f := s.cost[c]; f != 0 {
		subRow(s.cost, pr, f)
		s.cost[c] = 0
		s.costRHS -= f * s.b[r]
	}
	s.basis[r] = c
	s.iters++
}

// subRow computes dst -= f*src over the full row. It is the hot loop of the
// dense engine; keeping it straight-line lets the compiler eliminate bounds
// checks.
func subRow(dst, src []float64, f float64) {
	_ = dst[len(src)-1]
	for j := range src {
		dst[j] -= f * src[j]
	}
}
