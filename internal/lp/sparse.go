package lp

// The sparse revised simplex engine, the package default. The constraint
// matrix (with slack/surplus/artificial columns appended) is built once per
// solve in compressed column form; the basis lives in an LU factorization
// with a product-form eta file (lu.go); entering columns are priced with a
// candidate-list rule (pricing.go). Per pivot the engine runs one BTRAN
// (duals), a handful of sparse dot products (pricing), one FTRAN (entering
// column), and an O(rows) basic-solution update — independent of the column
// count, where the dense tableau pays O(rows·cols). Phase structure,
// tolerances, warm-start semantics, and the Basis encoding match the dense
// engine exactly; differential tests (sparse_test.go) hold the two to the
// same optimal values on every workload family.

import (
	"fmt"
	"math"
)

// spState is the sparse engine's workspace, embedded in Solver. All slices
// are grown monotonically and reused across solves.
type spState struct {
	rows, cols, n int
	artStart      int // first artificial column

	// constraint matrix in CSC form, aux columns appended after the n
	// original variables in the same layout the dense engine uses
	colPtr []int32
	colRow []int32
	colVal []float64
	cur    []int32 // build cursor

	b      []float64
	cost   []float64 // current phase's cost vector, by column
	banned []bool
	auxOf  []int // per column: -1 for original vars, else owning row
	rowAux []int // per row: its slack/surplus column, -1 for EQ rows
	rowArt []int // per row: its artificial column, -1 if none
	rowCnt []int32

	basisCols []int     // basis position (= constraint row) -> basic column
	inBasis   []bool    // per column
	xB        []float64 // basic solution B⁻¹b, position space
	cB        []float64 // basic costs, position space
	y         []float64 // duals cᵦB⁻¹, row space
	rho       []float64 // BTRAN'd unit row for dual pivots, row space
	w         []float64 // FTRAN'd entering column, position space
	ev        []float64 // unit-vector scratch (kept all-zero between uses)
	dred      []float64 // dual repair: maintained reduced costs, per column
	alpha     []float64 // dual repair: pivot-row entries, per column

	lu luFactors
	pr pricer

	// refactorization column-ordering scratch
	order  []int32
	bucket []int32
}

// setupSparse normalizes the constraints and (re)builds the CSC matrix,
// cost/bound vectors, and the initial all-slack basis.
func (s *Solver) setupSparse(p *Problem) error {
	rows, slacks, artificials, err := s.normalize(p)
	if err != nil {
		return err
	}
	m := len(p.Cons)
	n := p.NumVars
	sp := &s.sp
	cols := n + slacks + artificials
	sp.rows, sp.cols, sp.n = m, cols, n
	sp.artStart = n + slacks

	nt := 0
	cp := growInt32s(sp.colPtr, cols+1)
	sp.colPtr = cp
	for i, ri := range rows {
		for _, t := range ri.terms {
			if t.Var < 0 || t.Var >= n {
				return fmt.Errorf("lp: constraint %d references variable %d (have %d)", i, t.Var, n)
			}
			cp[t.Var+1]++
		}
		nt += len(ri.terms)
	}
	for j := n; j < cols; j++ {
		cp[j+1] = 1
	}
	for j := 0; j < cols; j++ {
		cp[j+1] += cp[j]
	}
	nnz := nt + slacks + artificials
	sp.colRow = growInt32s(sp.colRow, nnz)
	sp.colVal = growFloats(sp.colVal, nnz)
	cur := growInt32s(sp.cur, cols)
	sp.cur = cur
	copy(cur, cp[:cols])

	sp.b = growFloats(sp.b, m)
	sp.cost = growFloats(sp.cost, cols)
	sp.banned = growBools(sp.banned, cols)
	sp.inBasis = growBools(sp.inBasis, cols)
	sp.auxOf = growInts(sp.auxOf, cols)
	sp.rowAux = growInts(sp.rowAux, m)
	sp.rowArt = growInts(sp.rowArt, m)
	sp.rowCnt = growInt32s(sp.rowCnt, m)
	sp.basisCols = growInts(sp.basisCols, m)
	sp.xB = growFloats(sp.xB, m)
	sp.cB = growFloats(sp.cB, m)
	sp.y = growFloats(sp.y, m)
	sp.rho = growFloats(sp.rho, m)
	sp.w = growFloats(sp.w, m)
	sp.ev = growFloats(sp.ev, m)
	for j := 0; j < n; j++ {
		sp.auxOf[j] = -1
	}
	writeAux := func(j, row int, v float64) {
		pos := cur[j]
		cur[j]++
		sp.colRow[pos] = int32(row)
		sp.colVal[pos] = v
		sp.auxOf[j] = row
		sp.rowCnt[row]++
	}
	slackIdx, artIdx := n, sp.artStart
	for i, ri := range rows {
		for _, t := range ri.terms {
			pos := cur[t.Var]
			cur[t.Var]++
			sp.colRow[pos] = int32(i)
			sp.colVal[pos] = t.Coef
			sp.rowCnt[i]++
		}
		sp.b[i] = ri.b
		sp.rowAux[i], sp.rowArt[i] = -1, -1
		switch ri.op {
		case LE:
			writeAux(slackIdx, i, 1)
			sp.rowAux[i] = slackIdx
			sp.basisCols[i] = slackIdx
			slackIdx++
		case GE:
			writeAux(slackIdx, i, -1)
			sp.rowAux[i] = slackIdx
			slackIdx++
			writeAux(artIdx, i, 1)
			sp.rowArt[i] = artIdx
			sp.basisCols[i] = artIdx
			artIdx++
		case EQ:
			writeAux(artIdx, i, 1)
			sp.rowArt[i] = artIdx
			sp.basisCols[i] = artIdx
			artIdx++
		}
	}
	for i := 0; i < m; i++ {
		sp.inBasis[sp.basisCols[i]] = true
	}
	s.iters = 0
	s.prng.Seed(int64(m)*1e6 + int64(cols))
	sp.pr.reset(cols)
	return nil
}

// col returns column j's CSC row/value slices.
func (s *Solver) col(j int) ([]int32, []float64) {
	sp := &s.sp
	lo, hi := sp.colPtr[j], sp.colPtr[j+1]
	return sp.colRow[lo:hi], sp.colVal[lo:hi]
}

// colDot computes yᵀa_j for a row-space vector y.
func (s *Solver) colDot(y []float64, j int) float64 {
	rows, vals := s.col(j)
	d := 0.0
	for t, r := range rows {
		d += y[r] * vals[t]
	}
	return d
}

// ftranCol FTRANs column j into out (position space).
func (s *Solver) ftranCol(j int, out []float64) {
	rows, vals := s.col(j)
	s.sp.lu.ftran(rows, vals, out)
}

// factorizeSparse (re)factorizes the current basis from scratch and
// recomputes the basic solution from the original right-hand side,
// discarding all eta-file drift. Columns are eliminated in ascending
// nonzero-count order (a static Markowitz-style column ordering that keeps
// fill low: LP1's two-entry job columns pivot before the dense t column).
// Returns false when the basis is numerically singular.
func (s *Solver) factorizeSparse() bool {
	sp := &s.sp
	m := sp.rows
	sp.lu.begin(m)
	order := growInt32s(sp.order, m)
	sp.order = order
	maxNnz := 0
	for pos := 0; pos < m; pos++ {
		c := sp.basisCols[pos]
		if n := int(sp.colPtr[c+1] - sp.colPtr[c]); n > maxNnz {
			maxNnz = n
		}
	}
	bucket := growInt32s(sp.bucket, maxNnz+2)
	sp.bucket = bucket
	for pos := 0; pos < m; pos++ {
		c := sp.basisCols[pos]
		bucket[sp.colPtr[c+1]-sp.colPtr[c]+1]++
	}
	for i := 1; i <= maxNnz+1; i++ {
		bucket[i] += bucket[i-1]
	}
	for pos := 0; pos < m; pos++ {
		c := sp.basisCols[pos]
		nz := sp.colPtr[c+1] - sp.colPtr[c]
		order[bucket[nz]] = int32(pos)
		bucket[nz]++
	}
	for _, pos := range order {
		rows, vals := s.col(sp.basisCols[pos])
		step, _ := sp.lu.addColumn(rows, vals, sp.rowCnt)
		if step < 0 {
			return false
		}
		sp.lu.setStepPos(step, int(pos))
	}
	sp.lu.ftranDense(sp.b, sp.xB)
	return true
}

// ensureFreshSparse refactorizes when the eta file hits its cap.
func (s *Solver) ensureFreshSparse() error {
	if s.sp.lu.nEtas >= luMaxEtas {
		if !s.factorizeSparse() {
			return errNumeric
		}
	}
	return nil
}

// solveSparse solves the problem from a cold (all-slack) start on the
// sparse engine. errNumeric and ErrIterationLimit tell Solve to retry on
// the dense engine.
func (s *Solver) solveSparse(p *Problem) (*Solution, error) {
	if err := s.setupSparse(p); err != nil {
		return nil, err
	}
	s.ColdSolves++
	if !s.factorizeSparse() {
		return nil, errNumeric
	}
	if infeasible, err := s.phase1Sparse(); err != nil {
		return nil, err
	} else if infeasible {
		return &Solution{Status: Infeasible, Iters: s.iters}, nil
	}
	s.phase2CostSparse(p)
	switch err := s.iterateSparse(); {
	case err == errUnbounded:
		return &Solution{Status: Unbounded, Iters: s.iters}, nil
	case err != nil:
		return nil, err
	}
	return s.extractSparse(p), nil
}

// phase1Sparse minimizes the sum of artificials, reports infeasibility,
// drives leftover artificials out of the basis, and bans them.
func (s *Solver) phase1Sparse() (infeasible bool, err error) {
	sp := &s.sp
	if sp.artStart == sp.cols {
		return false, nil
	}
	for j := 0; j < sp.artStart; j++ {
		sp.cost[j] = 0
	}
	for j := sp.artStart; j < sp.cols; j++ {
		sp.cost[j] = 1
	}
	if err := s.iterateSparse(); err != nil {
		if err == errUnbounded {
			// Phase 1 is bounded below by 0; an unbounded verdict is
			// numerical trouble.
			return false, errNumeric
		}
		return false, err
	}
	sum := 0.0
	for i := 0; i < sp.rows; i++ {
		if sp.basisCols[i] >= sp.artStart {
			sum += sp.xB[i]
		}
	}
	if sum > 1e-7*(1+math.Abs(sum)) && sum > 1e-7 {
		return true, nil
	}
	// Drive any remaining artificials out of the basis.
	for pos := 0; pos < sp.rows; pos++ {
		if sp.basisCols[pos] < sp.artStart {
			continue
		}
		if err := s.ensureFreshSparse(); err != nil {
			return false, err
		}
		sp.ev[pos] = 1
		sp.lu.btran(sp.ev, sp.rho)
		sp.ev[pos] = 0
		pivoted := false
		for j := 0; j < sp.artStart && !pivoted; j++ {
			if sp.inBasis[j] {
				continue
			}
			if math.Abs(s.colDot(sp.rho, j)) <= pivotTol {
				continue
			}
			s.ftranCol(j, sp.w)
			if math.Abs(sp.w[pos]) <= pivotTol {
				continue
			}
			s.pivotSparse(j, pos, sp.w)
			pivoted = true
		}
		if !pivoted {
			// Redundant row: the artificial stays basic at value 0.
			sp.xB[pos] = 0
		}
	}
	for j := sp.artStart; j < sp.cols; j++ {
		sp.banned[j] = true
	}
	return false, nil
}

// phase2CostSparse installs the original objective.
func (s *Solver) phase2CostSparse(p *Problem) {
	sp := &s.sp
	copy(sp.cost[:sp.n], p.C)
	for j := sp.n; j < sp.cols; j++ {
		sp.cost[j] = 0
	}
}

// iterateSparse runs primal revised-simplex pivots until optimality,
// unboundedness, or the iteration budget is exhausted, with the same
// Dantzig → randomized → Bland stall escalation as the dense engine.
func (s *Solver) iterateSparse() error {
	sp := &s.sp
	maxIter := 5000 + 60*(sp.rows+sp.cols)
	mode := priceDantzig
	stall := 0
	lastObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if err := s.ensureFreshSparse(); err != nil {
			return err
		}
		for i := 0; i < sp.rows; i++ {
			sp.cB[i] = sp.cost[sp.basisCols[i]]
		}
		sp.lu.btran(sp.cB, sp.y)
		q := s.priceSparse(mode)
		if q < 0 {
			return nil // optimal
		}
		s.ftranCol(q, sp.w)
		r := s.ratioTestSparse()
		if r < 0 {
			return errUnbounded
		}
		if math.Abs(sp.w[r]) < pivotTol && sp.lu.nEtas > 0 {
			// Numerically unsafe pivot through a long eta chain: refresh
			// the factors and re-derive this iteration from scratch.
			if !s.factorizeSparse() {
				return errNumeric
			}
			continue
		}
		s.pivotSparse(q, r, sp.w)
		obj := 0.0
		for i := 0; i < sp.rows; i++ {
			obj += sp.cost[sp.basisCols[i]] * sp.xB[i]
		}
		switch {
		case obj < lastObj-1e-12*(1+math.Abs(lastObj)):
			lastObj = obj
			stall = 0
			mode = priceDantzig
		default:
			stall++
			switch {
			case stall > 4*sp.rows+1000:
				mode = priceBland
			case stall > sp.rows/2+40:
				mode = priceRandom
			}
		}
	}
	return ErrIterationLimit
}

// ratioTestSparse picks the leaving basis position for the FTRAN'd entering
// column in s.sp.w. Ratio ties (within eps) prefer the numerically larger
// pivot, then the smaller basic column id (the dense engine's anti-cycling
// tie-break). Returns -1 if the column is unbounded.
func (s *Solver) ratioTestSparse() int {
	sp := &s.sp
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < sp.rows; i++ {
		wi := sp.w[i]
		if wi <= eps {
			continue
		}
		r := sp.xB[i] / wi
		if r < bestRatio-eps {
			best, bestRatio = i, r
			continue
		}
		if r < bestRatio+eps && best >= 0 {
			wb := sp.w[best]
			if wi > 2*wb || (wi > 0.5*wb && sp.basisCols[i] < sp.basisCols[best]) {
				best, bestRatio = i, r
			}
		}
	}
	return best
}

// pivotSparse replaces the basic column at position r with column q, whose
// FTRAN image is w, updating the basic solution and appending an eta.
func (s *Solver) pivotSparse(q, r int, w []float64) {
	sp := &s.sp
	t := sp.xB[r] / w[r]
	for i := 0; i < sp.rows; i++ {
		if i == r {
			continue
		}
		if wi := w[i]; wi != 0 {
			v := sp.xB[i] - wi*t
			if v < 0 && v > -cleanEps {
				v = 0
			}
			sp.xB[i] = v
		}
	}
	if t < 0 && t > -cleanEps {
		t = 0
	}
	sp.xB[r] = t
	sp.lu.appendEta(r, w)
	sp.inBasis[sp.basisCols[r]] = false
	sp.inBasis[q] = true
	sp.basisCols[r] = q
	s.iters++
}

// extractSparse reads the optimal solution and basis out of the workspace.
func (s *Solver) extractSparse(p *Problem) *Solution {
	sp := &s.sp
	x := make([]float64, sp.n)
	for i := 0; i < sp.rows; i++ {
		if c := sp.basisCols[i]; c < sp.n {
			v := sp.xB[i]
			if v < 0 && v > -cleanEps {
				v = 0
			}
			x[c] = v
		}
	}
	obj := 0.0
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	basis := make([]int, sp.rows)
	for i := 0; i < sp.rows; i++ {
		if c := sp.basisCols[i]; c < sp.n {
			basis[i] = c
		} else {
			basis[i] = -1 - sp.auxOf[c]
		}
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iters: s.iters, Basis: basis}
}

// tryWarmSparse attempts the warm-start path on the sparse engine: install
// the hinted basis into a fresh LU factorization, repair primal feasibility
// with dual pivots, finish with primal phase 2. A false ok means the caller
// should fall back to a cold solve; numerical trouble never escapes as an
// error.
func (s *Solver) tryWarmSparse(p *Problem, hint []int) (sol *Solution, ok bool, err error) {
	if err := s.setupSparse(p); err != nil {
		return nil, false, err
	}
	if !s.installBasisSparse(hint) {
		return nil, false, nil
	}
	sp := &s.sp
	sp.lu.ftranDense(sp.b, sp.xB)
	// Artificials may never (re-)enter; a hinted basis replaces phase 1.
	for j := sp.artStart; j < sp.cols; j++ {
		sp.banned[j] = true
	}
	// An artificial stuck basic at a meaningfully positive value means the
	// install did not reach a feasible basis of the original rows.
	for i := 0; i < sp.rows; i++ {
		if sp.basisCols[i] >= sp.artStart && sp.xB[i] > pivotTol {
			return nil, false, nil
		}
	}
	s.phase2CostSparse(p)
	if !s.dualRepairSparse() {
		return nil, false, nil
	}
	if err := s.iterateSparse(); err != nil {
		// Unbounded, stalled, or numerically stuck on the warm path: let
		// the cold solve decide.
		return nil, false, nil
	}
	// Re-check stuck artificials at the final basis (see dense tryWarm).
	for i := 0; i < sp.rows; i++ {
		if sp.basisCols[i] >= sp.artStart && sp.xB[i] > pivotTol {
			return nil, false, nil
		}
	}
	return s.extractSparse(p), true, nil
}

// installBasisSparse builds a basis from the hint by LU-factorizing the
// desired columns directly: each column is forward-eliminated against the
// factors so far and claims the unclaimed row where its magnitude is
// largest — the sparse equivalent of the dense engine's Gaussian install.
// Columns that cannot reach an acceptable pivot (departed-structure
// leftovers, dependent sets) are skipped; unclaimed rows are patched with
// their own slack/surplus (preferred — for a GE row this converts a would-be
// stuck artificial into a negative-b row that dualRepair fixes) or
// artificial. Returns false when no full basis could be assembled.
func (s *Solver) installBasisSparse(hint []int) bool {
	sp := &s.sp
	want := growBools(s.wantCol, sp.cols)
	s.wantCol = want
	des := growInts(s.desired, sp.rows)[:0]
	for _, h := range hint {
		c := -1
		switch {
		case h >= 0 && h < sp.n:
			c = h
		case h != NoHint && h < 0:
			if rr := -1 - h; rr >= 0 && rr < sp.rows {
				c = sp.rowAux[rr]
			}
		}
		if c >= 0 && !want[c] {
			want[c] = true
			des = append(des, c)
		}
	}
	s.desired = des
	// The hint decides the basis from scratch; drop the initial aux basis.
	for i := 0; i < sp.rows; i++ {
		sp.inBasis[sp.basisCols[i]] = false
		sp.basisCols[i] = -1
	}
	sp.lu.begin(sp.rows)
	install := func(c int) bool {
		rows, vals := s.col(c)
		step, prow := sp.lu.addColumn(rows, vals, sp.rowCnt)
		if step < 0 {
			return false
		}
		sp.lu.setStepPos(step, prow)
		sp.basisCols[prow] = c
		sp.inBasis[c] = true
		return true
	}
	for _, c := range des {
		if !sp.inBasis[c] {
			install(c)
		}
	}
	// Patch unclaimed rows. A patch column can claim a different unclaimed
	// row than its owner (fill moves the pivot), so sweep until a pass
	// makes no progress; every success shrinks the deficit, bounding the
	// sweeps.
	for progress := true; progress && !sp.lu.full(); {
		progress = false
		for r := 0; r < sp.rows && !sp.lu.full(); r++ {
			if sp.lu.stepOfRow[r] >= 0 {
				continue
			}
			if c := sp.rowAux[r]; c >= 0 && !sp.inBasis[c] && install(c) {
				progress = true
				continue
			}
			if c := sp.rowArt[r]; c >= 0 && !sp.inBasis[c] && install(c) {
				progress = true
			}
		}
	}
	return sp.lu.full()
}

// dualRepairSparse restores primal feasibility (xB ≥ 0) with dual simplex
// pivots — the revised-simplex version of the dense engine's dualRepair,
// with the same cap, tolerances, and tie-breaks. Reduced costs are
// computed once up front and then maintained with the standard dual
// update d ← d − (d_q/α_q)·α, so each iteration costs one BTRAN (the
// leaving row) plus one sparse dot per column; like the dense repair, the
// maintained d is a pivot-choice heuristic — the subsequent primal phase
// recomputes reduced costs exactly, so drift here never reaches the
// answer. Returns false when the warm path should be abandoned.
func (s *Solver) dualRepairSparse() bool {
	sp := &s.sp
	d := growFloats(sp.dred, sp.cols)
	sp.dred = d
	alpha := growFloats(sp.alpha, sp.cols)
	sp.alpha = alpha
	for i := 0; i < sp.rows; i++ {
		sp.cB[i] = sp.cost[sp.basisCols[i]]
	}
	sp.lu.btran(sp.cB, sp.y)
	for j := 0; j < sp.cols; j++ {
		if sp.banned[j] || sp.inBasis[j] {
			d[j] = 0
			continue
		}
		d[j] = s.reducedCost(j)
	}
	// The budget is deliberately tighter than the dense engine's: a dual
	// iteration here costs a full column sweep — O(cols) sparse dots,
	// an order of magnitude more than a primal candidate-list iteration —
	// so a repair that grinds past ~rows pivots has lost the race against
	// a cold primal solve and should hand over to it.
	maxIter := sp.rows + 30
	for iter := 0; iter < maxIter; iter++ {
		if s.ensureFreshSparse() != nil {
			return false
		}
		r, worst := -1, -eps
		for i := 0; i < sp.rows; i++ {
			if sp.xB[i] < worst {
				worst, r = sp.xB[i], i
			}
		}
		if r < 0 {
			return true
		}
		sp.ev[r] = 1
		sp.lu.btran(sp.ev, sp.rho)
		sp.ev[r] = 0
		// One flat pass over the CSC arrays: per column, α_j = ρ·a_j and
		// the dual ratio test. This sweep is the repair loop's hot path.
		c, bestRatio := -1, math.Inf(1)
		rho, colPtr, colRow, colVal := sp.rho, sp.colPtr, sp.colRow, sp.colVal
		t0 := colPtr[0]
		for j := 0; j < sp.cols; j++ {
			t1 := colPtr[j+1]
			if sp.banned[j] || sp.inBasis[j] {
				alpha[j] = 0
				t0 = t1
				continue
			}
			a := 0.0
			for t := t0; t < t1; t++ {
				a += rho[colRow[t]] * colVal[t]
			}
			t0 = t1
			alpha[j] = a
			if a >= -eps {
				continue
			}
			ratio := d[j] / -a
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (c < 0 || j < c)) {
				c, bestRatio = j, ratio
			}
		}
		if c < 0 {
			// No entering column: primal infeasible from this basis (or
			// numerics); the cold solve will give the definitive answer.
			return false
		}
		s.ftranCol(c, sp.w)
		if math.Abs(sp.w[r]) <= eps {
			// The FTRAN'd pivot vanished against the eta chain; refresh
			// and retry (d stays valid — the basis is unchanged), or give
			// up on fresh factors.
			if sp.lu.nEtas > 0 && s.factorizeSparse() {
				continue
			}
			return false
		}
		leaving := sp.basisCols[r]
		f := d[c] / alpha[c]
		if f != 0 {
			for j := 0; j < sp.cols; j++ {
				if a := alpha[j]; a != 0 {
					d[j] -= f * a
				}
			}
		}
		d[c] = 0
		s.pivotSparse(c, r, sp.w)
		// The leaving variable's own tableau-row entry is 1.
		d[leaving] = -f
	}
	return false
}
