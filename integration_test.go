package suu_test

import (
	"fmt"
	"math/rand"
	"testing"

	suu "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rounding"
	"repro/internal/sim"
	"repro/internal/workload"
)

// integrationMatrix pairs every algorithm with every instance family it
// supports. Each cell runs under both the threshold (SUU*) and coin-flip
// (SUU) simulators and checks the execution invariants.
func integrationMatrix() []struct {
	alg    string
	family string
	spec   workload.Spec
} {
	var out []struct {
		alg    string
		family string
		spec   workload.Spec
	}
	add := func(alg string, spec workload.Spec) {
		out = append(out, struct {
			alg    string
			family string
			spec   workload.Spec
		}{alg, spec.Family, spec})
	}
	indepFamilies := []workload.Spec{
		{Family: "uniform", M: 3, N: 9},
		{Family: "skill", M: 4, N: 8},
		{Family: "specialist", M: 4, N: 8, Groups: 2},
		{Family: "volunteer", M: 3, N: 7},
	}
	chainFamilies := []workload.Spec{
		{Family: "chains", M: 3, N: 9, Z: 3},
		{Family: "chains-skewed", M: 3, N: 10},
		{Family: "chains-hard", M: 4, N: 12, Z: 3},
	}
	forestFamilies := []workload.Spec{
		{Family: "forest", M: 3, N: 10},
		{Family: "in-forest", M: 3, N: 10},
	}
	anyDAG := []workload.Spec{{Family: "mapreduce", M: 3, N: 8, NMap: 5}}
	anyDAG = append(anyDAG, indepFamilies...)
	anyDAG = append(anyDAG, chainFamilies...)
	anyDAG = append(anyDAG, forestFamilies...)

	for _, s := range indepFamilies {
		add("sem", s)
		add("obl", s)
		add("greedy", s)
		add("chains", s) // degenerate chains
		add("forest", s) // degenerate forest
	}
	for _, s := range chainFamilies {
		add("chains", s)
		add("chains-lr", s)
		add("chains-quantized", s)
		add("forest", s)
	}
	for _, s := range forestFamilies {
		add("forest", s)
		add("forest-lr", s)
	}
	for _, s := range anyDAG {
		add("sequential", s)
		add("split", s)
	}
	add("layered", workload.Spec{Family: "mapreduce", M: 3, N: 8, NMap: 5})
	return out
}

func buildPolicy(alg string) sim.Policy {
	lp1, lp2 := rounding.NewCache(), rounding.NewLP2Cache()
	switch alg {
	case "sem":
		return &core.SEM{Cache: lp1}
	case "obl":
		return &core.OBL{Cache: lp1}
	case "greedy":
		return baseline.Greedy{}
	case "chains":
		return &core.Chains{LP1Cache: lp1, LP2Cache: lp2}
	case "chains-lr":
		return &core.Chains{LP1Cache: lp1, LP2Cache: lp2, LongJobs: &core.OBL{Cache: lp1}}
	case "chains-quantized":
		return &core.Chains{LP1Cache: lp1, LP2Cache: lp2, Quantize: true}
	case "forest":
		return &core.Forest{Engine: &core.Chains{LP1Cache: lp1, LP2Cache: lp2}}
	case "forest-lr":
		return &core.Forest{Engine: &core.Chains{LP1Cache: lp1, LP2Cache: lp2, LongJobs: &core.OBL{Cache: lp1}}}
	case "layered":
		return &core.Layered{Inner: &core.SEM{Cache: lp1}}
	case "sequential":
		return baseline.Sequential{}
	case "split":
		return baseline.EligibleSplit{}
	}
	panic("unknown alg " + alg)
}

// TestIntegrationMatrix runs every (algorithm, family) pair end to end in
// both simulators: the world enforces eligibility and unit granularity, so
// a pass certifies the schedule was legal and complete.
func TestIntegrationMatrix(t *testing.T) {
	for _, c := range integrationMatrix() {
		c := c
		t.Run(fmt.Sprintf("%s/%s", c.alg, c.family), func(t *testing.T) {
			t.Parallel()
			spec := c.spec
			spec.Seed = 17
			ins, err := workload.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			p := buildPolicy(c.alg)
			criticalPath := int64(1)
			if ins.Prec != nil {
				layers, err := ins.Prec.Layers()
				if err != nil {
					t.Fatal(err)
				}
				criticalPath = int64(len(layers))
			}
			for seed := int64(0); seed < 3; seed++ {
				// Threshold (SUU*) execution.
				w := sim.NewWorld(ins, rand.New(rand.NewSource(seed)))
				if err := p.Run(w); err != nil {
					t.Fatalf("threshold seed %d: %v", seed, err)
				}
				ms, err := w.Makespan()
				if err != nil {
					t.Fatal(err)
				}
				if ms < criticalPath {
					t.Fatalf("makespan %d below critical path %d", ms, criticalPath)
				}
				// Determinism: same seed, same result.
				w2 := sim.NewWorld(ins, rand.New(rand.NewSource(seed)))
				if err := p.Run(w2); err != nil {
					t.Fatal(err)
				}
				ms2, _ := w2.Makespan()
				if ms2 != ms {
					t.Fatalf("nondeterministic: %d vs %d for seed %d", ms, ms2, seed)
				}
				// Coin (SUU) execution: same policy code, Bernoulli world.
				wc := sim.NewCoinWorld(ins, rand.New(rand.NewSource(seed)))
				if err := p.Run(wc); err != nil {
					t.Fatalf("coin seed %d: %v", seed, err)
				}
				if _, err := wc.Makespan(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestMonteCarloAgreesAcrossWorkers re-runs a nontrivial policy with
// different worker counts and demands identical samples (scheduling
// must not leak into results).
func TestMonteCarloAgreesAcrossWorkers(t *testing.T) {
	ins, err := suu.Generate(suu.Spec{Family: "chains", M: 4, N: 12, Z: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := suu.NewChains()
	a, err := sim.MonteCarlo(ins, p, 24, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.MonteCarlo(ins, p, 24, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Makespans {
		if a.Makespans[i] != b.Makespans[i] {
			t.Fatalf("trial %d: %g vs %g", i, a.Makespans[i], b.Makespans[i])
		}
	}
}

// TestSEMDeterministicWarmStarts: SEM's warm-started round re-solves must
// keep trial i byte-identical across worker counts, across cache reuse
// (the same policy value run twice), and against a fresh policy — the
// warm-start chain is deterministic per trial and its cache keys include
// the chain history, so no scheduling or cache state may leak into results.
func TestSEMDeterministicWarmStarts(t *testing.T) {
	ins, err := suu.Generate(suu.Spec{Family: "uniform", M: 8, N: 24, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	const trials, seed = 32, 7
	shared := suu.NewSEM()
	ref, err := sim.MonteCarlo(ins, shared, trials, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]func() (*sim.MCResult, error){
		"shared policy, 8 workers": func() (*sim.MCResult, error) {
			return sim.MonteCarlo(ins, shared, trials, seed, 8)
		},
		"fresh policy, 8 workers": func() (*sim.MCResult, error) {
			return sim.MonteCarlo(ins, suu.NewSEM(), trials, seed, 8)
		},
	}
	for name, fn := range runs {
		res, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range ref.Makespans {
			if res.Makespans[i] != ref.Makespans[i] {
				t.Fatalf("%s: trial %d makespan %v, want %v", name, i, res.Makespans[i], ref.Makespans[i])
			}
		}
	}
	// Standalone replay: Run(ins, fresh policy, seed+i) recomputes trial
	// i's whole warm chain from an empty cache and must land on the same
	// makespan.
	for i := 0; i < 5; i++ {
		ms, err := suu.Run(ins, suu.NewSEM(), seed+int64(i))
		if err != nil {
			t.Fatalf("replay trial %d: %v", i, err)
		}
		if float64(ms) != ref.Makespans[i] {
			t.Fatalf("replay trial %d: makespan %d, estimator saw %v", i, ms, ref.Makespans[i])
		}
	}
}

// TestRatioSanityAcrossFamilies bounds measured ratios loosely on every
// family: the algorithms carry constants (≈6 from Lemma 2, delays up to H)
// but ratios beyond ~60x the LP bound would indicate a real regression.
func TestRatioSanityAcrossFamilies(t *testing.T) {
	cases := []struct {
		alg  string
		spec workload.Spec
		cap  float64
	}{
		{"sem", workload.Spec{Family: "uniform", M: 8, N: 24}, 40},
		{"sem", workload.Spec{Family: "specialist", M: 8, N: 24, Groups: 4}, 40},
		{"chains", workload.Spec{Family: "chains", M: 6, N: 24, Z: 4}, 60},
		{"forest", workload.Spec{Family: "forest", M: 6, N: 24}, 60},
	}
	for _, c := range cases {
		c := c
		t.Run(c.alg+"/"+c.spec.Family, func(t *testing.T) {
			t.Parallel()
			spec := c.spec
			spec.Seed = 9
			ins, err := workload.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.MonteCarlo(ins, buildPolicy(c.alg), 20, 11, 0)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := suu.LowerBound(ins)
			if err != nil {
				t.Fatal(err)
			}
			if ratio := res.Summary.Mean / lb; ratio > c.cap {
				t.Fatalf("ratio %.1f exceeds sanity cap %.0f (mean %.1f, lb %.1f)",
					ratio, c.cap, res.Summary.Mean, lb)
			}
		})
	}
}
